//! Windowed re-fitting over stored campaigns.
//!
//! The longitudinal-drift stress scenario shifts the per-service volume
//! law over multi-day windows; a whole-horizon fit averages over the
//! drift while per-window fits track it. This module slices a stored
//! campaign along the day axis through [`mtd_dataset::read_window`] and
//! fits one registry per window — the operational answer to drift, and
//! the path `mtd-campaign --refit-window` and the drift breakage
//! battery exercise.
//!
//! Windows tile `[0, n_days)` as `[0, w), [w, 2w), ...`; a final
//! partial window keeps the remaining days rather than dropping them.
//! A window equal to the horizon degenerates to the whole-horizon fit
//! bit-identically (same assembler, same fit).

use crate::pipeline::{fit_registry_with, StreamFitError};
use crate::registry::ModelRegistry;
use crate::volume::VolumeFitConfig;
use mtd_dataset::{read_window, read_window_from_reader, DatasetStream, StoreReport};
use mtd_math::MathError;
use std::path::Path;

/// One window's fit in a windowed re-fitting sweep.
#[derive(Debug, Clone)]
pub struct WindowFit {
    /// First day of the window (inclusive).
    pub day0: u32,
    /// Last day of the window (exclusive).
    pub day1: u32,
    /// The registry fitted on this window alone.
    pub registry: ModelRegistry,
    /// Integrity report from the window's streamed read.
    pub report: StoreReport,
}

/// The `[day0, day1)` tiling of `n_days` by `window_days`.
pub fn window_spans(n_days: u32, window_days: u32) -> Vec<(u32, u32)> {
    let mut spans = Vec::new();
    let mut day0 = 0;
    while day0 < n_days {
        spans.push((day0, (day0 + window_days).min(n_days)));
        day0 += window_days;
    }
    spans
}

/// Fits one registry per `window_days`-day window of the stored dataset
/// at `path`.
pub fn fit_registry_windowed(
    path: &Path,
    window_days: u32,
    volume_config: &VolumeFitConfig,
) -> Result<Vec<WindowFit>, StreamFitError> {
    let _span = mtd_telemetry::span!("fit.registry_windowed");
    if window_days == 0 {
        return Err(StreamFitError::Math(MathError::EmptyInput(
            "fit_registry_windowed: window must be at least one day",
        )));
    }
    let n_days = DatasetStream::open(path)?.meta().n_days;
    let mut fits = Vec::new();
    for (day0, day1) in window_spans(n_days, window_days) {
        let (dataset, report) = read_window(path, day0, day1)?;
        let registry = fit_registry_with(&dataset, volume_config)?;
        fits.push(WindowFit {
            day0,
            day1,
            registry,
            report,
        });
    }
    Ok(fits)
}

/// [`fit_registry_windowed`] over an in-memory store image — the form
/// the stress battery uses (no temp files, byte-deterministic).
pub fn fit_registry_windowed_bytes(
    bytes: &[u8],
    window_days: u32,
    volume_config: &VolumeFitConfig,
) -> Result<Vec<WindowFit>, StreamFitError> {
    if window_days == 0 {
        return Err(StreamFitError::Math(MathError::EmptyInput(
            "fit_registry_windowed: window must be at least one day",
        )));
    }
    let n_days = DatasetStream::from_reader(std::io::Cursor::new(bytes))?
        .meta()
        .n_days;
    let mut fits = Vec::new();
    for (day0, day1) in window_spans(n_days, window_days) {
        let (dataset, report) = read_window_from_reader(std::io::Cursor::new(bytes), day0, day1)?;
        let registry = fit_registry_with(&dataset, volume_config)?;
        fits.push(WindowFit {
            day0,
            day1,
            registry,
            report,
        });
    }
    Ok(fits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::fit_registry;
    use mtd_dataset::Dataset;
    use mtd_netsim::geo::Topology;
    use mtd_netsim::services::ServiceCatalog;
    use mtd_netsim::{ScenarioConfig, StressConfig};

    fn build(days: u32, stress: StressConfig) -> Dataset {
        // Scale sized so even the rarest service keeps enough sessions
        // per one-day window for a stable μ (the zero-drift regression
        // pins per-service agreement, which is sample-noise bound).
        let config = ScenarioConfig {
            n_bs: 8,
            days,
            arrival_scale: 0.2,
            stress,
            ..ScenarioConfig::small_test()
        };
        let topology = Topology::generate(config.n_bs, config.seed);
        Dataset::build(&config, &topology, &ServiceCatalog::paper())
    }

    #[test]
    fn window_spans_tile_the_horizon() {
        assert_eq!(window_spans(6, 2), vec![(0, 2), (2, 4), (4, 6)]);
        assert_eq!(window_spans(7, 3), vec![(0, 3), (3, 6), (6, 7)]);
        assert_eq!(window_spans(3, 5), vec![(0, 3)]);
        assert_eq!(window_spans(0, 2), vec![]);
    }

    #[test]
    fn whole_horizon_window_reproduces_the_plain_fit_bit_exactly() {
        // Zero-drift regression, exact half: with the window equal to
        // the horizon, the windowed path must reproduce the whole-
        // horizon fit bit-identically.
        let ds = build(2, StressConfig::default());
        let bytes = mtd_dataset::store::encode_binary(&ds, 1);
        let whole = fit_registry(&ds).unwrap();
        let fits = fit_registry_windowed_bytes(&bytes, 2, &VolumeFitConfig::default()).unwrap();
        assert_eq!(fits.len(), 1);
        assert_eq!(fits[0].day0, 0);
        assert_eq!(fits[0].day1, 2);
        assert!(fits[0].report.is_clean());
        assert_eq!(fits[0].registry, whole);
    }

    #[test]
    fn zero_drift_windowed_fits_stay_near_the_whole_fit() {
        // Zero-drift regression, tolerance half: without drift, every
        // one-day window sees the same stationary law, so each window
        // fit must agree with the whole-horizon fit within a pinned
        // per-service tolerance.
        let ds = build(2, StressConfig::default());
        let bytes = mtd_dataset::store::encode_binary(&ds, 1);
        let whole = fit_registry(&ds).unwrap();
        let fits = fit_registry_windowed_bytes(&bytes, 1, &VolumeFitConfig::default()).unwrap();
        assert_eq!(fits.len(), 2);
        for fit in &fits {
            // Sliver-share services see a handful of sessions per
            // one-day window, so their window μ is pure sample noise;
            // the regression pins every service with ≥ 1% share (and
            // checks that covers most of the catalog). 0.25 decades
            // covers the remaining sample noise while staying below
            // the 0.35/day drift signal the drift regression detects.
            let mut pinned = 0;
            for model in &fit.registry.services {
                let full = whole.by_name(&model.name).unwrap();
                if full.session_share < 0.01 {
                    continue;
                }
                pinned += 1;
                assert!(
                    (model.mu - full.mu).abs() < 0.25,
                    "window [{}, {}) {}: mu {} vs {}",
                    fit.day0,
                    fit.day1,
                    model.name,
                    model.mu,
                    full.mu
                );
            }
            // The Table 1 catalog is long-tailed — only a dozen or so
            // services clear 1% share — but those carry nearly all
            // sessions, so pinning them pins the fit that matters.
            assert!(
                pinned >= 10,
                "only {pinned} of {} services were well-sampled",
                fit.registry.services.len()
            );
        }
    }

    #[test]
    fn pinned_drift_is_tracked_by_windows_and_missed_by_the_whole_fit() {
        // One μ-shift per day: the last window's fit must sit close to
        // the drifted truth while the whole-horizon fit lags it, and
        // the recovery error must be monotone in window size.
        let drift = StressConfig {
            drift_mu_per_window: 0.35,
            drift_window_days: 1,
            ..StressConfig::default()
        };
        let days = 4;
        let ds = build(days, drift);
        let bytes = mtd_dataset::store::encode_binary(&ds, 1);
        let whole = fit_registry(&ds).unwrap();

        // Mean fitted μ across services is a robust drift tracker.
        let mean_mu = |r: &ModelRegistry| {
            r.services.iter().map(|m| m.mu).sum::<f64>() / r.services.len() as f64
        };

        let mut last_window_error = Vec::new();
        for window in [days, 2, 1] {
            let fits =
                fit_registry_windowed_bytes(&bytes, window, &VolumeFitConfig::default()).unwrap();
            let last = fits.last().unwrap();
            // The final day's truth is the base law shifted by (days-1)
            // windows; compare against the final one-day window's fit.
            last_window_error.push((window, mean_mu(&last.registry)));
        }
        let truth = last_window_error
            .iter()
            .find(|(w, _)| *w == 1)
            .map(|(_, mu)| *mu)
            .unwrap();
        // Recovery error: |fitted μ − final-day μ| for each window size.
        let errors: Vec<(u32, f64)> = last_window_error
            .iter()
            .map(|(w, mu)| (*w, (mu - truth).abs()))
            .collect();
        assert!(
            errors.windows(2).all(|p| p[0].1 >= p[1].1 - 1e-9),
            "recovery error not monotone in window size: {errors:?}"
        );
        // And the whole-horizon fit genuinely lags the drifted truth.
        let whole_err = (mean_mu(&whole) - truth).abs();
        assert!(
            whole_err > 0.3,
            "whole-horizon fit should lag a 0.35/day drift: err {whole_err}"
        );
    }

    #[test]
    fn windowed_fit_is_deterministic() {
        let ds = build(2, StressConfig::default());
        let bytes = mtd_dataset::store::encode_binary(&ds, 1);
        let a = fit_registry_windowed_bytes(&bytes, 1, &VolumeFitConfig::default()).unwrap();
        let b = fit_registry_windowed_bytes(&bytes, 1, &VolumeFitConfig::default()).unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.registry, y.registry);
        }
    }

    #[test]
    fn zero_window_is_rejected() {
        let ds = build(1, StressConfig::default());
        let bytes = mtd_dataset::store::encode_binary(&ds, 1);
        assert!(fit_registry_windowed_bytes(&bytes, 0, &VolumeFitConfig::default()).is_err());
    }
}
