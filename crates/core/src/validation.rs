//! Whole-registry validation against a measurement dataset.
//!
//! §5.4 assesses model accuracy "by means of standard tests" — EMD for
//! the volume PDFs, R² for the duration–volume pairs. This module runs
//! that assessment for every service at once, adds the complementary
//! KS statistic and the linear-mean ratio (which log-domain metrics are
//! blind to), and summarizes the result — the report a model consumer
//! checks before trusting a registry on new data.

pub mod sampling;
pub mod stress;

use crate::registry::ModelRegistry;
use mtd_dataset::{Dataset, SliceFilter};
use mtd_math::emd::{emd_same_grid, ks_same_grid};
use mtd_math::stats::median;
use mtd_math::{MathError, Result};

/// Per-service validation metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceValidation {
    pub name: String,
    /// EMD between modeled and measured volume PDFs (decades).
    pub volume_emd: f64,
    /// KS distance between the same PDFs.
    pub volume_ks: f64,
    /// Model linear mean over measured linear mean (1.0 = calibrated).
    pub mean_ratio: f64,
    /// R² of the stored power-law fit.
    pub pair_r2: f64,
    /// Share drift: |model share − measured share| (absolute).
    pub share_drift: f64,
}

/// Registry-level validation report.
#[derive(Debug, Clone)]
pub struct ValidationReport {
    pub services: Vec<ServiceValidation>,
}

impl ValidationReport {
    /// Median EMD across services.
    #[must_use]
    pub fn median_emd(&self) -> f64 {
        let v: Vec<f64> = self.services.iter().map(|s| s.volume_emd).collect();
        median(&v).unwrap_or(f64::NAN)
    }

    /// Median KS across services.
    #[must_use]
    pub fn median_ks(&self) -> f64 {
        let v: Vec<f64> = self.services.iter().map(|s| s.volume_ks).collect();
        median(&v).unwrap_or(f64::NAN)
    }

    /// Worst (most biased) linear-mean ratio.
    #[must_use]
    pub fn worst_mean_ratio(&self) -> f64 {
        self.services
            .iter()
            .map(|s| s.mean_ratio.max(1.0 / s.mean_ratio.max(1e-12)))
            .fold(1.0, f64::max)
    }

    /// Whether every service passes the given thresholds.
    #[must_use]
    pub fn passes(&self, max_emd: f64, max_mean_bias: f64) -> bool {
        self.services.iter().all(|s| {
            s.volume_emd <= max_emd
                && s.mean_ratio <= 1.0 + max_mean_bias
                && s.mean_ratio >= 1.0 / (1.0 + max_mean_bias)
        })
    }
}

/// Validates a registry against a dataset (every service present in both).
pub fn validate(registry: &ModelRegistry, dataset: &Dataset) -> Result<ValidationReport> {
    let all = SliceFilter::all();
    let total_sessions: f64 = (0..dataset.n_services())
        .map(|s| dataset.sessions(s as u16, &all))
        .sum();
    if total_sessions <= 0.0 {
        return Err(MathError::EmptyInput("validate: empty dataset"));
    }
    let mut services = Vec::new();
    for model in &registry.services {
        let Some(svc) = dataset.service_by_name(&model.name) else {
            continue;
        };
        let Ok(measured) = dataset.volume_pdf(svc, &all) else {
            continue;
        };
        let modeled = model.to_binned_pdf(*measured.grid())?;
        let measured_share = dataset.sessions(svc, &all) / total_sessions;
        services.push(ServiceValidation {
            name: model.name.clone(),
            volume_emd: emd_same_grid(&modeled, &measured)?,
            volume_ks: ks_same_grid(&modeled, &measured)?,
            mean_ratio: model.clamped_mean() / measured.mean_linear().max(1e-300),
            pair_r2: model.quality.pair_r2,
            share_drift: (model.session_share - measured_share).abs(),
        });
    }
    if services.is_empty() {
        return Err(MathError::EmptyInput("validate: no overlapping services"));
    }
    Ok(ValidationReport { services })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::fit_registry;
    use mtd_netsim::geo::Topology;
    use mtd_netsim::services::ServiceCatalog;
    use mtd_netsim::ScenarioConfig;

    fn setup() -> (ModelRegistry, Dataset) {
        let config = ScenarioConfig::small_test();
        let topology = Topology::generate(config.n_bs, config.seed);
        let catalog = ServiceCatalog::paper();
        let dataset = Dataset::build(&config, &topology, &catalog);
        let registry = fit_registry(&dataset).unwrap();
        (registry, dataset)
    }

    #[test]
    fn self_validation_passes() {
        // A registry fitted on a dataset must validate well against it.
        let (registry, dataset) = setup();
        let report = validate(&registry, &dataset).unwrap();
        assert_eq!(report.services.len(), registry.len());
        assert!(
            report.median_emd() < 0.12,
            "median emd {}",
            report.median_emd()
        );
        assert!(report.median_ks() < 0.2, "median ks {}", report.median_ks());
        // Mean calibration holds within 30% for every service.
        assert!(
            report.worst_mean_ratio() < 1.3,
            "worst mean ratio {}",
            report.worst_mean_ratio()
        );
        assert!(report.passes(0.3, 0.35));
        // Shares drift less than 1.5 pp.
        for s in &report.services {
            assert!(s.share_drift < 0.015, "{}: drift {}", s.name, s.share_drift);
        }
    }

    #[test]
    fn cross_validation_detects_mismatch() {
        // Validate a registry against a dataset from a *different* ground
        // truth: a registry with deliberately corrupted volumes must fail
        // the thresholds the honest one passes.
        let (registry, dataset) = setup();
        let mut corrupted = registry.clone();
        for m in &mut corrupted.services {
            m.mu += 1.0; // one decade heavier everywhere
            m.support_log10.1 = 4.0;
        }
        let honest = validate(&registry, &dataset).unwrap();
        let broken = validate(&corrupted, &dataset).unwrap();
        assert!(broken.median_emd() > 5.0 * honest.median_emd());
        assert!(!broken.passes(0.3, 0.35));
    }

    #[test]
    fn released_registry_validates_on_fresh_data() {
        if !crate::json_runtime_available() {
            return; // released() parses embedded JSON through serde
        }
        // The embedded released models were fitted on the 100-BS
        // evaluation campaign; they must still describe a *fresh* small
        // campaign reasonably (same ground truth, different seed/scale).
        let config = ScenarioConfig {
            seed: 0xDEAD,
            ..ScenarioConfig::small_test()
        };
        let topology = Topology::generate(config.n_bs, config.seed);
        let catalog = ServiceCatalog::paper();
        let dataset = Dataset::build(&config, &topology, &catalog);
        let released = ModelRegistry::released();
        let report = validate(&released, &dataset).unwrap();
        assert!(
            report.median_emd() < 0.2,
            "median emd {}",
            report.median_emd()
        );
    }
}
