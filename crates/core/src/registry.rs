//! The released model registry: every per-service tuple plus the
//! per-decile arrival models, with JSON persistence (§5.4: "which we
//! release publicly").

use crate::arrival::{ArrivalModelSet, ServiceBreakdown};
use crate::model::ServiceModel;
use mtd_math::Result as MathResult;
use serde::{Deserialize, Serialize};
use std::io;
use std::path::Path;

/// The full set of released session-level traffic models.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelRegistry {
    /// Per-service models, indexed by service id.
    pub services: Vec<ServiceModel>,
    /// Per-decile arrival models.
    pub arrivals: ArrivalModelSet,
}

impl ModelRegistry {
    /// The released model registry: the parameter tuples fitted on the
    /// repository's evaluation campaign (100 BSs x 7 days), embedded at
    /// compile time — the equivalent of the paper's public artifact.
    /// Regenerate with `cargo run --release -p mtd-experiments --bin
    /// fit_models` and copy `results/released_models.json` over
    /// `crates/core/data/released_models.json`.
    ///
    /// # Panics
    /// Panics if the embedded JSON is corrupt (a build-time artifact
    /// error, not a runtime condition).
    #[must_use]
    pub fn released() -> ModelRegistry {
        ModelRegistry::from_json(include_str!("../data/released_models.json"))
            .expect("embedded released models parse")
    }

    /// Looks a model up by service name.
    #[must_use]
    pub fn by_name(&self, name: &str) -> Option<&ServiceModel> {
        self.services.iter().find(|s| s.name == name)
    }

    /// Number of modeled services.
    #[must_use]
    pub fn len(&self) -> usize {
        self.services.len()
    }

    /// Whether the registry is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.services.is_empty()
    }

    /// The §5.1 per-service arrival breakdown built from the registry's
    /// session shares.
    pub fn breakdown(&self) -> MathResult<ServiceBreakdown> {
        let shares: Vec<(u16, f64)> = self
            .services
            .iter()
            .enumerate()
            .map(|(i, s)| (i as u16, s.session_share))
            .collect();
        ServiceBreakdown::new(&shares)
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string_pretty(self)
    }

    /// Parses from JSON.
    pub fn from_json(json: &str) -> serde_json::Result<ModelRegistry> {
        serde_json::from_str(json)
    }

    /// Saves to a JSON file.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_json().map_err(io::Error::other)?)
    }

    /// Loads from a JSON file.
    pub fn load(path: &Path) -> io::Result<ModelRegistry> {
        ModelRegistry::from_json(&std::fs::read_to_string(path)?).map_err(io::Error::other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrival::{ArrivalModel, PARETO_SHAPE};
    use crate::model::{ModelQuality, PeakComponent};

    fn tiny_registry() -> ModelRegistry {
        ModelRegistry {
            services: vec![
                ServiceModel {
                    name: "A".into(),
                    mu: 0.3,
                    sigma: 0.7,
                    peaks: vec![PeakComponent {
                        k: 0.1,
                        mu: 1.0,
                        sigma: 0.1,
                    }],
                    alpha: 0.1,
                    beta: 0.6,
                    session_share: 0.7,
                    duration_sigma: 0.0,
                    support_log10: (-3.0, 4.0),
                    quality: ModelQuality {
                        volume_emd: 1e-5,
                        pair_r2: 0.8,
                    },
                },
                ServiceModel {
                    name: "B".into(),
                    mu: 1.3,
                    sigma: 0.5,
                    peaks: vec![],
                    alpha: 0.003,
                    beta: 1.5,
                    session_share: 0.3,
                    duration_sigma: 0.0,
                    support_log10: (-3.0, 4.0),
                    quality: ModelQuality {
                        volume_emd: 2e-5,
                        pair_r2: 0.9,
                    },
                },
            ],
            arrivals: ArrivalModelSet {
                per_decile: vec![
                    ArrivalModel {
                        peak_mu: 5.0,
                        peak_sigma: 0.5,
                        pareto_shape: PARETO_SHAPE,
                        pareto_scale: 0.25,
                    };
                    10
                ],
            },
        }
    }

    #[test]
    fn released_registry_parses_and_is_complete() {
        if !crate::json_runtime_available() {
            return; // released() parses embedded JSON through serde
        }
        let r = ModelRegistry::released();
        assert_eq!(r.len(), 31);
        assert_eq!(r.arrivals.len(), 10);
        let nf = r.by_name("Netflix").expect("netflix released");
        assert!(nf.beta > 1.0);
        let fb = r.by_name("Facebook").expect("facebook released");
        assert!(fb.beta < 1.0);
        // Shares sum to 1 and arrival means grow across deciles.
        let total: f64 = r.services.iter().map(|s| s.session_share).sum();
        assert!((total - 1.0).abs() < 1e-6);
        assert!(r.arrivals.decile(9).peak_mu > r.arrivals.decile(0).peak_mu);
    }

    #[test]
    fn json_roundtrip() {
        if !crate::json_runtime_available() {
            return; // offline stub cannot round-trip serde JSON
        }
        let r = tiny_registry();
        let json = r.to_json().unwrap();
        let back = ModelRegistry::from_json(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn file_roundtrip() {
        if !crate::json_runtime_available() {
            return; // offline stub cannot round-trip serde JSON
        }
        let r = tiny_registry();
        let dir = std::env::temp_dir().join("mtd_registry_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("models.json");
        r.save(&path).unwrap();
        let back = ModelRegistry::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back, r);
    }

    #[test]
    fn lookup_and_breakdown() {
        let r = tiny_registry();
        assert!(r.by_name("A").is_some());
        assert!(r.by_name("Z").is_none());
        let b = r.breakdown().unwrap();
        assert!((b.share_of(0) - 0.7).abs() < 1e-12);
        assert!((b.share_of(1) - 0.3).abs() < 1e-12);
    }
}
