//! The §5.1 session-arrival model.
//!
//! Peak daylight arrivals at a BS are Gaussian with decile-dependent mean
//! `μ` and the `σ = μ/10` regularity the paper observes across all BS
//! classes; off-peak nighttime arrivals are Pareto with fixed shape
//! `b = 1.765` and a per-decile scale. Arrivals are broken down per
//! service with the constant Table 1 session shares ("the share of
//! sessions induced by each service is relatively constant across
//! different BSs and over time", CV ≈ 1%).

use mtd_math::distributions::{
    Distribution1D, Gaussian, Pareto, TruncatedGaussian, TruncatedPareto,
};
use mtd_math::fit::fit_gaussian;
use mtd_math::{MathError, Result};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The fixed off-peak Pareto shape released with the models (§5.1).
pub const PARETO_SHAPE: f64 = 1.765;

/// Draws a standard normal variate (shared helper for model sampling).
///
/// Inverse-transform draw straight through `std_normal_quantile`, skipping
/// the per-call `Gaussian::new(0.0, 1.0)` construction/validation the old
/// path paid on every variate. Bit-identical: the unit Gaussian quantile is
/// `0.0 + 1.0·Φ⁻¹(u)`, and both those ops are exact for every reachable
/// `Φ⁻¹(u)` (Acklam's refined central branch cannot return `−0.0`).
pub fn sample_std_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Same u clamping as `Distribution1D::sample`.
    let u: f64 = rng.gen::<f64>().max(1e-16);
    mtd_math::distributions::std_normal_quantile(u.min(1.0 - 1e-16))
}

/// Fitted bimodal arrival model of one BS load class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArrivalModel {
    /// Peak-hour Gaussian mean `μ` (sessions/minute).
    pub peak_mu: f64,
    /// Peak-hour Gaussian spread; the released models use `μ/10`.
    pub peak_sigma: f64,
    /// Off-peak Pareto shape (`b = 1.765` in the released models).
    pub pareto_shape: f64,
    /// Off-peak Pareto scale `s`.
    pub pareto_scale: f64,
}

impl ArrivalModel {
    /// Fits the model from measured per-minute counts.
    ///
    /// The Gaussian is fitted by moments on the peak-window counts, then
    /// regularized to the paper's `σ = μ/10` rule. The Pareto keeps the
    /// fixed shape and matches the scale to the mean of *all* off-peak
    /// counts (`E[X] = b·s/(b−1)`): integer counting makes low-rate
    /// minutes read as zero, but their contribution to the mean is
    /// unbiased, whereas the minimum-order statistic the raw MLE would
    /// use degenerates to 1 and conditioning on positivity would inflate
    /// night rates at lightly-loaded BSs.
    pub fn fit(peak_counts: &[u32], offpeak_counts: &[u32]) -> Result<ArrivalModel> {
        if peak_counts.len() < 2 {
            return Err(MathError::EmptyInput("ArrivalModel::fit peak counts"));
        }
        let peak_f: Vec<f64> = peak_counts.iter().map(|c| f64::from(*c)).collect();
        let gaussian = fit_gaussian(&peak_f)?;
        let peak_mu = gaussian.mean().max(1e-6);

        let off_mean = if offpeak_counts.is_empty() {
            peak_mu / 20.0
        } else {
            offpeak_counts.iter().map(|c| f64::from(*c)).sum::<f64>() / offpeak_counts.len() as f64
        };
        let pareto_scale = (off_mean * (PARETO_SHAPE - 1.0) / PARETO_SHAPE).max(1e-6);

        Ok(ArrivalModel {
            peak_mu,
            peak_sigma: peak_mu / 10.0,
            pareto_shape: PARETO_SHAPE,
            pareto_scale,
        })
    }

    /// Density of the peak-mode count distribution at `x`.
    #[must_use]
    pub fn peak_pdf(&self, x: f64) -> f64 {
        Gaussian::new(self.peak_mu, self.peak_sigma.max(1e-9))
            .map(|g| g.pdf(x))
            .unwrap_or(0.0)
    }

    /// Density of the off-peak mode at `x`.
    #[must_use]
    pub fn offpeak_pdf(&self, x: f64) -> f64 {
        Pareto::new(self.pareto_shape, self.pareto_scale)
            .map(|p| p.pdf(x))
            .unwrap_or(0.0)
    }

    /// The fitted off-peak mean `E[X] = b·s/(b−1)` the Pareto scale was
    /// inverted from (infinite when `b ≤ 1`).
    #[must_use]
    pub fn offpeak_mean(&self) -> f64 {
        if self.pareto_shape <= 1.0 {
            f64::INFINITY
        } else {
            self.pareto_shape * self.pareto_scale / (self.pareto_shape - 1.0)
        }
    }

    /// Safety cap on a single off-peak minute (3× the peak mean): the
    /// fitted integer counts the scale came from cannot out-draw the
    /// daytime regime by much, so neither should the sampler.
    #[must_use]
    pub fn offpeak_cap(&self) -> f64 {
        self.peak_mu * 3.0
    }

    /// Builds the calibrated continuous count samplers once; prefer this
    /// over repeated [`ArrivalModel::sample_count`] in hot loops, since
    /// the truncated-distribution calibration solves a bisection.
    #[must_use]
    pub fn sampler(&self) -> ArrivalSampler {
        // Counts cannot be negative, so the peak draw conditions the
        // Gaussian on X ≥ 0 with the location recalibrated to keep the
        // fitted mean μ. Rectifying (`max(0.0)`) instead piles the
        // negative tail onto 0 and inflates the mean when μ/σ is small.
        let peak = match TruncatedGaussian::with_mean(self.peak_sigma.max(1e-9), 0.0, self.peak_mu)
        {
            Ok(d) => PeakDraw::Truncated(d),
            Err(_) => PeakDraw::Rectified(
                Gaussian::new(self.peak_mu.max(1e-9), self.peak_sigma.max(1e-9))
                    .expect("positive mean and sigma"),
            ),
        };
        // The off-peak draw samples the cap-truncated Pareto exactly,
        // with the scale recalibrated so the truncated mean equals the
        // fitted b·s/(b−1). Clamping raw draws at the cap (`min`) loses
        // the (s/cap)^{b−1}/b share of the mean — ≈2.4% per decile in the
        // released registry.
        let offpeak = match TruncatedPareto::with_mean(
            self.pareto_shape,
            self.offpeak_cap(),
            self.offpeak_mean(),
        ) {
            Ok(d) => OffpeakDraw::Truncated(d),
            Err(_) => OffpeakDraw::Capped(
                Pareto::new(self.pareto_shape.max(1e-9), self.pareto_scale.max(1e-9))
                    .expect("positive shape and scale"),
                self.offpeak_cap(),
            ),
        };
        ArrivalSampler { peak, offpeak }
    }

    /// Draws a per-minute arrival count for the peak or off-peak regime;
    /// probabilistic rounding preserves means. Calibrates a fresh
    /// [`ArrivalSampler`] per call — hoist one via
    /// [`ArrivalModel::sampler`] when drawing many counts.
    pub fn sample_count<R: Rng + ?Sized>(&self, peak: bool, rng: &mut R) -> u32 {
        self.sampler().sample_count(peak, rng)
    }
}

#[derive(Debug, Clone, Copy)]
enum PeakDraw {
    Truncated(TruncatedGaussian),
    /// Fallback when no truncated calibration exists (`μ ≤ 0`, or μ so
    /// far below 0 relative to σ that the conditioned mass underflows).
    Rectified(Gaussian),
}

#[derive(Debug, Clone, Copy)]
enum OffpeakDraw {
    Truncated(TruncatedPareto),
    /// Fallback when the fitted mean is not attainable under the cap
    /// (`b ≤ 1`, or a pathological scale ≥ cap).
    Capped(Pareto, f64),
}

/// Calibrated continuous samplers of one [`ArrivalModel`]: the truncated
/// distributions are solved once and reused across draws.
#[derive(Debug, Clone, Copy)]
pub struct ArrivalSampler {
    peak: PeakDraw,
    offpeak: OffpeakDraw,
}

impl ArrivalSampler {
    /// Draws a per-minute arrival count; probabilistic rounding of the
    /// continuous draw preserves the regime mean exactly.
    pub fn sample_count<R: Rng + ?Sized>(&self, peak: bool, rng: &mut R) -> u32 {
        let x = if peak {
            match &self.peak {
                PeakDraw::Truncated(d) => d.sample(rng),
                PeakDraw::Rectified(d) => d.sample(rng).max(0.0),
            }
        } else {
            match &self.offpeak {
                OffpeakDraw::Truncated(d) => d.sample(rng),
                OffpeakDraw::Capped(d, cap) => d.sample(rng).min(*cap),
            }
        };
        let base = x.floor();
        base as u32 + u32::from(rng.gen::<f64>() < (x - base))
    }
}

/// One fitted arrival model per BS-load decile — the full released set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrivalModelSet {
    pub per_decile: Vec<ArrivalModel>,
}

impl ArrivalModelSet {
    /// The model of a decile (0 = lightest, 9 = busiest); out-of-range
    /// deciles clamp to the busiest class.
    ///
    /// # Panics
    /// Panics when the set is empty — tolerant store loads can produce
    /// one; use [`ArrivalModelSet::try_decile`] to handle that case.
    #[must_use]
    pub fn decile(&self, d: u8) -> &ArrivalModel {
        self.try_decile(d)
            .expect("ArrivalModelSet::decile called on an empty set")
    }

    /// [`ArrivalModelSet::decile`] without the panic: `None` when the set
    /// is empty.
    #[must_use]
    pub fn try_decile(&self, d: u8) -> Option<&ArrivalModel> {
        let last = self.per_decile.len().checked_sub(1)?;
        self.per_decile.get(usize::from(d).min(last))
    }

    /// Number of decile classes (10 in the paper).
    #[must_use]
    pub fn len(&self) -> usize {
        self.per_decile.len()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.per_decile.is_empty()
    }
}

/// Per-service breakdown of arrivals (§5.1, Table 1): "we use the session
/// shares … as probabilities to assign to a specific service a newly
/// established session".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceBreakdown {
    /// `(service index, cumulative share)`, shares normalized to 1.
    cumulative: Vec<(u16, f64)>,
}

impl ServiceBreakdown {
    /// Builds from per-service shares (any positive weights).
    pub fn new(shares: &[(u16, f64)]) -> Result<ServiceBreakdown> {
        if shares.is_empty() {
            return Err(MathError::EmptyInput("ServiceBreakdown"));
        }
        let total: f64 = shares.iter().map(|(_, s)| s).sum();
        if !(total > 0.0) {
            return Err(MathError::InvalidParameter("shares must sum to > 0"));
        }
        let mut cumulative = Vec::with_capacity(shares.len());
        let mut acc = 0.0;
        for (id, s) in shares {
            if *s < 0.0 {
                return Err(MathError::InvalidParameter("negative share"));
            }
            acc += s / total;
            cumulative.push((*id, acc));
        }
        if let Some(last) = cumulative.last_mut() {
            last.1 = 1.0;
        }
        Ok(ServiceBreakdown { cumulative })
    }

    /// Assigns a newly established session to a service.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u16 {
        let u: f64 = rng.gen();
        let idx = self.cumulative.partition_point(|(_, c)| *c < u);
        self.cumulative[idx.min(self.cumulative.len() - 1)].0
    }

    /// The normalized share of a service.
    #[must_use]
    pub fn share_of(&self, service: u16) -> f64 {
        let mut prev = 0.0;
        for (id, c) in &self.cumulative {
            if *id == service {
                return c - prev;
            }
            prev = *c;
        }
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn synthetic_counts(mu: f64, scale: f64, seed: u64) -> (Vec<u32>, Vec<u32>) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = Gaussian::new(mu, mu / 10.0).unwrap();
        let p = Pareto::new(PARETO_SHAPE, scale).unwrap();
        let peak: Vec<u32> = (0..20_000)
            .map(|_| g.sample(&mut rng).max(0.0).round() as u32)
            .collect();
        let off: Vec<u32> = (0..20_000)
            .map(|_| p.sample(&mut rng).min(mu * 3.0).round() as u32)
            .collect();
        (peak, off)
    }

    #[test]
    fn fit_recovers_ground_truth() {
        let (peak, off) = synthetic_counts(30.0, 1.5, 1);
        let m = ArrivalModel::fit(&peak, &off).unwrap();
        assert!((m.peak_mu - 30.0).abs() < 0.5, "mu {}", m.peak_mu);
        assert!((m.peak_sigma - 3.0).abs() < 0.1);
        assert_eq!(m.pareto_shape, PARETO_SHAPE);
        // Scale recovery is rougher (integer rounding + tail cap), but
        // must land in the right ballpark.
        assert!(
            (m.pareto_scale - 1.5).abs() < 0.6,
            "scale {}",
            m.pareto_scale
        );
    }

    #[test]
    fn sampling_matches_fitted_means() {
        let m = ArrivalModel {
            peak_mu: 12.0,
            peak_sigma: 1.2,
            pareto_shape: PARETO_SHAPE,
            pareto_scale: 0.6,
        };
        let mut rng = SmallRng::seed_from_u64(2);
        let n = 50_000;
        let peak_mean: f64 = (0..n)
            .map(|_| f64::from(m.sample_count(true, &mut rng)))
            .sum::<f64>()
            / n as f64;
        assert!((peak_mean - 12.0).abs() < 0.1, "peak mean {peak_mean}");
        let off_mean: f64 = (0..n)
            .map(|_| f64::from(m.sample_count(false, &mut rng)))
            .sum::<f64>()
            / n as f64;
        assert!(off_mean < peak_mean / 4.0, "off mean {off_mean}");
        // The cap-truncated sampler is recalibrated to the *fitted* mean
        // b·s/(b−1), not the ≈2.4%-low clamped mean.
        let fitted = m.offpeak_mean();
        assert!(
            (off_mean - fitted).abs() / fitted < 0.03,
            "off mean {off_mean} vs fitted {fitted}"
        );
    }

    #[test]
    fn light_load_peak_mean_not_inflated_by_rectification() {
        // μ/σ = 0.8: rectifying at 0 would inflate the mean by ~20%;
        // the truncated sampler must stay on the fitted μ.
        let m = ArrivalModel {
            peak_mu: 0.4,
            peak_sigma: 0.5,
            pareto_shape: PARETO_SHAPE,
            pareto_scale: 0.02,
        };
        let sampler = m.sampler();
        let mut rng = SmallRng::seed_from_u64(6);
        let n = 100_000;
        let mean: f64 = (0..n)
            .map(|_| f64::from(sampler.sample_count(true, &mut rng)))
            .sum::<f64>()
            / f64::from(n);
        assert!((mean - 0.4).abs() < 0.01, "peak mean {mean}");
    }

    #[test]
    fn fit_rejects_empty() {
        assert!(ArrivalModel::fit(&[], &[]).is_err());
        assert!(ArrivalModel::fit(&[1], &[]).is_err());
    }

    #[test]
    fn fit_handles_all_zero_nights() {
        let (peak, _) = synthetic_counts(5.0, 0.3, 3);
        let m = ArrivalModel::fit(&peak, &[0, 0, 0, 0]).unwrap();
        assert!(m.pareto_scale > 0.0);
    }

    #[test]
    fn breakdown_samples_to_shares() {
        let b = ServiceBreakdown::new(&[(0, 70.0), (1, 20.0), (2, 10.0)]).unwrap();
        let mut rng = SmallRng::seed_from_u64(4);
        let n = 100_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            counts[b.sample(&mut rng) as usize] += 1;
        }
        assert!((counts[0] as f64 / n as f64 - 0.7).abs() < 0.01);
        assert!((counts[1] as f64 / n as f64 - 0.2).abs() < 0.01);
        assert!((b.share_of(2) - 0.1).abs() < 1e-12);
        assert_eq!(b.share_of(99), 0.0);
    }

    #[test]
    fn breakdown_rejects_bad_input() {
        assert!(ServiceBreakdown::new(&[]).is_err());
        assert!(ServiceBreakdown::new(&[(0, 0.0)]).is_err());
        assert!(ServiceBreakdown::new(&[(0, 1.0), (1, -0.5)]).is_err());
    }

    #[test]
    fn decile_lookup_clamps() {
        let set = ArrivalModelSet {
            per_decile: vec![
                ArrivalModel {
                    peak_mu: 1.0,
                    peak_sigma: 0.1,
                    pareto_shape: PARETO_SHAPE,
                    pareto_scale: 0.05,
                };
                10
            ],
        };
        assert_eq!(set.len(), 10);
        let _ = set.decile(9);
        let _ = set.decile(200); // clamps, no panic
    }

    #[test]
    fn empty_decile_set_is_guarded() {
        let set = ArrivalModelSet { per_decile: vec![] };
        assert!(set.is_empty());
        assert!(set.try_decile(0).is_none());
        assert!(set.try_decile(200).is_none());
        let populated = ArrivalModelSet {
            per_decile: vec![ArrivalModel {
                peak_mu: 1.0,
                peak_sigma: 0.1,
                pareto_shape: PARETO_SHAPE,
                pareto_scale: 0.05,
            }],
        };
        assert!(populated.try_decile(9).is_some());
    }

    #[test]
    #[should_panic(expected = "empty set")]
    fn empty_decile_set_panics_with_message() {
        let set = ArrivalModelSet { per_decile: vec![] };
        let _ = set.decile(0);
    }
}
