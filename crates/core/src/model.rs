//! The released per-service model: the §5.4 parameter tuple
//! `[μ_s, σ_s, {k_{s,n}, μ_{s,n}, σ_{s,n}}_n, α_s, β_s]`.

use mtd_math::distributions::{Distribution1D, LogNormal10};
use mtd_math::fit::PowerLawFit;
use mtd_math::histogram::{BinnedPdf, LogGrid};
use mtd_math::Result;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One residual peak component `k · LogN(μ, σ²)` of Eq. (4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PeakComponent {
    /// Residual probability mass (the interval's integral, §5.2 step 3).
    pub k: f64,
    /// Peak location, `log₁₀` MB.
    pub mu: f64,
    /// Peak spread in decades (`0.997·ℓ/3` for interval span ℓ).
    pub sigma: f64,
}

/// Fit-quality metrics reported in §5.4.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ModelQuality {
    /// EMD between the modeled and measured `F_s(x)` (order 1e-5 — one
    /// order below the Fig 8a inter-slice distances — in the paper).
    pub volume_emd: f64,
    /// R² of the power-law duration fit (0.7–0.9 typical, ≥ 0.5 noted).
    pub pair_r2: f64,
}

/// The complete session-level model of one mobile service.
///
/// # Examples
/// ```
/// use mtd_core::registry::ModelRegistry;
/// use rand::SeedableRng;
/// # if serde_json::from_str::<u32>("1").is_err() { return; } // offline serde stub
/// let registry = ModelRegistry::released();
/// let netflix = registry.by_name("Netflix").unwrap();
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
/// let (volume_mb, duration_s, throughput_mbps) = netflix.sample_session(&mut rng);
/// assert!(volume_mb > 0.0 && duration_s >= 1.0);
/// assert!((throughput_mbps - volume_mb * 8.0 / duration_s).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceModel {
    pub name: String,
    /// Main log-normal location `μ_s` (log₁₀ MB), Eq. (3).
    pub mu: f64,
    /// Main log-normal spread `σ_s` (decades).
    pub sigma: f64,
    /// Residual peaks (≤ 3 by construction, §5.2).
    pub peaks: Vec<PeakComponent>,
    /// Power-law prefactor `α_s` of `v(d) = α·d^β` (MB at 1 s).
    pub alpha: f64,
    /// Power-law exponent `β_s`.
    pub beta: f64,
    /// Session share used by the §5.1 per-service arrival breakdown.
    pub session_share: f64,
    /// Log₁₀ dispersion of the duration around the deterministic inverse
    /// `v⁻¹` (decades). The paper's released tuple stops at the mean
    /// relation; this one extra fitted value (from the within-bin
    /// dispersion the aggregation pipeline can expose) restores the
    /// *scatter* of per-session throughput, which §6-style capacity
    /// studies are sensitive to. Zero reproduces the paper's exact
    /// deterministic behavior.
    #[serde(default)]
    pub duration_sigma: f64,
    /// Measured support of the volume PDF, `log₁₀` MB: samples are
    /// truncated to `[10^lo, 10^hi]`. An analytic log-normal has unbounded
    /// tails, but measured session volumes do not (link capacity, DPI
    /// range); without truncation, the model's *linear* traffic mean — to
    /// which the §6 capacity studies are sensitive — badly overshoots.
    /// Fitted as the measured 0.05% / 99.95% quantiles.
    #[serde(default = "default_support")]
    pub support_log10: (f64, f64),
    /// Fit quality against the measurement data.
    pub quality: ModelQuality,
}

fn default_support() -> (f64, f64) {
    (-3.0, 4.0)
}

impl ServiceModel {
    /// The Eq. (5) mixture density over the `log₁₀ x` axis:
    /// `(f_s + Σ f_{s,n}) / (1 + Σ k_n)`.
    #[must_use]
    pub fn pdf_log10(&self, u: f64) -> f64 {
        let main = LogNormal10::new(self.mu, self.sigma.max(1e-9))
            .map(|d| d.pdf_log10(u))
            .unwrap_or(0.0);
        let peaks: f64 = self
            .peaks
            .iter()
            .map(|p| {
                LogNormal10::new(p.mu, p.sigma.max(1e-9))
                    .map(|d| p.k * d.pdf_log10(u))
                    .unwrap_or(0.0)
            })
            .sum();
        let total_k: f64 = self.peaks.iter().map(|p| p.k).sum();
        (main + peaks) / (1.0 + total_k)
    }

    /// The Eq. (5) mixture CDF over the `log₁₀ x` axis — the analytic
    /// companion of [`ServiceModel::pdf_log10`], used by the sampling
    /// fidelity battery's KS test. Ignores the support clamp; see
    /// [`ServiceModel::sample_volume`] for the censoring the sampler adds.
    #[must_use]
    pub fn cdf_log10(&self, u: f64) -> f64 {
        use mtd_math::distributions::std_normal_cdf;
        let main = std_normal_cdf((u - self.mu) / self.sigma.max(1e-9));
        let peaks: f64 = self
            .peaks
            .iter()
            .map(|p| p.k * std_normal_cdf((u - p.mu) / p.sigma.max(1e-9)))
            .sum();
        let total_k: f64 = self.peaks.iter().map(|p| p.k).sum();
        (main + peaks) / (1.0 + total_k)
    }

    /// Bulk [`ServiceModel::cdf_log10`] through the SIMD Gaussian-CDF
    /// kernel, one pass per mixture component. Component contributions are
    /// accumulated in the scalar summation order, so results differ from
    /// the scalar path only by the simd module's pinned ULP bound (and are
    /// bit-identical across tiers and thread counts).
    pub fn cdf_log10_batch(&self, us: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.resize(us.len(), 0.0);
        mtd_math::simd::gaussian_cdf_into(us, self.mu, self.sigma.max(1e-9), out);
        if !self.peaks.is_empty() {
            let mut tmp = vec![0.0; us.len()];
            let mut peaks = vec![0.0; us.len()];
            for p in &self.peaks {
                mtd_math::simd::gaussian_cdf_into(us, p.mu, p.sigma.max(1e-9), &mut tmp);
                for (acc, &c) in peaks.iter_mut().zip(&tmp) {
                    *acc += p.k * c;
                }
            }
            for (o, &pk) in out.iter_mut().zip(&peaks) {
                *o += pk;
            }
        }
        let total_k: f64 = self.peaks.iter().map(|p| p.k).sum();
        let denom = 1.0 + total_k;
        for o in out.iter_mut() {
            *o /= denom;
        }
    }

    /// The effective `log₁₀` support of [`ServiceModel::sample_volume`]:
    /// the fitted support intersected with the absolute 1 KB .. 10 GB
    /// guard the sampler clamps to.
    #[must_use]
    pub fn effective_support_log10(&self) -> (f64, f64) {
        (
            self.support_log10.0.max(-3.0),
            self.support_log10.1.min(4.0),
        )
    }

    /// Discretizes the Eq. (5) model onto a grid (for EMD comparisons and
    /// plotting against measured PDFs).
    pub fn to_binned_pdf(&self, grid: LogGrid) -> Result<BinnedPdf> {
        BinnedPdf::from_fn(grid, |u| self.pdf_log10(u))
    }

    /// The power-law mean volume at duration `d` (MB).
    #[must_use]
    pub fn volume_at(&self, duration_s: f64) -> f64 {
        self.alpha * duration_s.powf(self.beta)
    }

    /// The §5.4 inverse map `v⁻¹`: duration whose mean volume is `v`,
    /// clamped to the measured duration support (1 s .. 4 h; §4.2 reports
    /// per-BS sessions lasting "from seconds to hours").
    #[must_use]
    pub fn duration_for(&self, volume_mb: f64) -> f64 {
        PowerLawFit {
            alpha: self.alpha,
            beta: self.beta,
            r2: self.quality.pair_r2,
        }
        .invert(volume_mb)
        .clamp(1.0, 14_400.0)
    }

    /// Samples a session volume (MB) from the Eq. (5) mixture: choose the
    /// main component with probability `1/(1+Σk)`, else peak `n` with
    /// probability `k_n/(1+Σk)`.
    pub fn sample_volume<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let total_k: f64 = self.peaks.iter().map(|p| p.k).sum();
        let mut pick: f64 = rng.gen::<f64>() * (1.0 + total_k);
        let (mu, sigma) = if pick < 1.0 {
            (self.mu, self.sigma)
        } else {
            pick -= 1.0;
            let mut chosen = (self.mu, self.sigma);
            for p in &self.peaks {
                if pick < p.k {
                    chosen = (p.mu, p.sigma);
                    break;
                }
                pick -= p.k;
            }
            chosen
        };
        let (lo, hi) = self.support_log10;
        LogNormal10::new(mu, sigma.max(1e-9))
            .expect("valid component")
            .sample(rng)
            .clamp(10f64.powf(lo).max(1e-3), 10f64.powf(hi).min(1e4))
    }

    /// The model's mean volume (MB) when samples are clamped to the
    /// current support, computed in closed form from the mixture's
    /// log-normal partial expectations. Used to calibrate the support so
    /// the model's *linear* mean matches the measurement.
    #[must_use]
    pub fn clamped_mean(&self) -> f64 {
        use mtd_math::distributions::{std_normal_cdf, LN10};
        let (lo, hi) = self.support_log10;
        let total_k: f64 = self.peaks.iter().map(|p| p.k).sum();
        let mut components: Vec<(f64, f64, f64)> =
            vec![(1.0 / (1.0 + total_k), self.mu, self.sigma.max(1e-9))];
        for p in &self.peaks {
            components.push((p.k / (1.0 + total_k), p.mu, p.sigma.max(1e-9)));
        }
        let floor = 10f64.powf(lo);
        let cap = 10f64.powf(hi);
        let mut mean = 0.0;
        for (w, mu, sigma) in components {
            let m_full = 10f64.powf(mu) * ((sigma * LN10).powi(2) / 2.0).exp();
            let z_hi = (hi - mu) / sigma;
            let z_lo = (lo - mu) / sigma;
            // E[X · 1{lo < u ≤ hi}] for u = log10 X.
            let middle = m_full
                * (std_normal_cdf(z_hi - sigma * LN10) - std_normal_cdf(z_lo - sigma * LN10));
            let below = floor * std_normal_cdf(z_lo);
            let above = cap * (1.0 - std_normal_cdf(z_hi));
            mean += w * (middle + below + above);
        }
        mean
    }

    /// Calibrates the support's upper bound (by bisection on the
    /// closed-form [`ServiceModel::clamped_mean`]) so the model's linear
    /// mean matches `target_mean_mb`. If even the uncalibrated support
    /// undershoots the target, the support is left unchanged.
    pub fn calibrate_support(&mut self, target_mean_mb: f64) {
        if self.clamped_mean() <= target_mean_mb {
            return;
        }
        let (lo, hi0) = self.support_log10;
        let mut lo_t = lo + 1e-3;
        let mut hi_t = hi0;
        for _ in 0..60 {
            let mid = 0.5 * (lo_t + hi_t);
            self.support_log10 = (lo, mid);
            if self.clamped_mean() > target_mean_mb {
                hi_t = mid;
            } else {
                lo_t = mid;
            }
        }
        self.support_log10 = (lo, 0.5 * (lo_t + hi_t));
    }

    /// Samples a full session tuple per §5.4: volume from `F̂_s`, duration
    /// via `v⁻¹` (plus the fitted log-normal scatter when
    /// `duration_sigma > 0`), mean throughput as the ratio. Returns
    /// `(volume_mb, duration_s, throughput_mbps)`.
    pub fn sample_session<R: Rng + ?Sized>(&self, rng: &mut R) -> (f64, f64, f64) {
        let v = self.sample_volume(rng);
        let mut d = self.duration_for(v);
        if self.duration_sigma > 0.0 {
            let z: f64 = crate::arrival::sample_std_normal(rng);
            d = (d * 10f64.powf(z * self.duration_sigma)).clamp(1.0, 14_400.0);
        }
        (v, d, v * 8.0 / d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn netflix_like() -> ServiceModel {
        ServiceModel {
            name: "Netflix".into(),
            mu: 0.6,
            sigma: 0.8,
            peaks: vec![
                PeakComponent {
                    k: 0.20,
                    mu: 1.60,
                    sigma: 0.10,
                },
                PeakComponent {
                    k: 0.10,
                    mu: 2.18,
                    sigma: 0.08,
                },
            ],
            alpha: 0.00272,
            beta: 1.5,
            session_share: 0.024,
            duration_sigma: 0.0,
            support_log10: (-3.0, 4.0),
            quality: ModelQuality {
                volume_emd: 1e-5,
                pair_r2: 0.85,
            },
        }
    }

    #[test]
    fn eq5_density_integrates_to_one() {
        let m = netflix_like();
        // Riemann sum over a wide log range.
        let n = 50_000;
        let (lo, hi) = (-6.0, 7.0);
        let step = (hi - lo) / n as f64;
        let mass: f64 = (0..n)
            .map(|i| m.pdf_log10(lo + (i as f64 + 0.5) * step) * step)
            .sum();
        assert!((mass - 1.0).abs() < 1e-6, "mass {mass}");
    }

    #[test]
    fn cdf_log10_integrates_pdf() {
        let m = netflix_like();
        assert!(m.cdf_log10(-8.0) < 1e-9);
        assert!((m.cdf_log10(8.0) - 1.0).abs() < 1e-9);
        // CDF at u equals the integral of the mixture density up to u.
        for &u in &[0.0, 1.0, 1.6, 2.5] {
            let n = 20_000;
            let lo = -8.0;
            let step = (u - lo) / n as f64;
            let integral: f64 = (0..n)
                .map(|i| m.pdf_log10(lo + (i as f64 + 0.5) * step) * step)
                .sum();
            assert!(
                (m.cdf_log10(u) - integral).abs() < 1e-4,
                "u={u}: cdf {} vs integral {integral}",
                m.cdf_log10(u)
            );
        }
    }

    #[test]
    fn peaks_raise_density_locally() {
        let m = netflix_like();
        let mut no_peaks = m.clone();
        no_peaks.peaks.clear();
        // At the 40 MB peak the mixture density exceeds the plain main fit.
        assert!(m.pdf_log10(1.60) > no_peaks.pdf_log10(1.60));
    }

    #[test]
    fn duration_inverse_roundtrips() {
        let m = netflix_like();
        let v = m.volume_at(600.0);
        assert!((m.duration_for(v) - 600.0).abs() < 1e-6);
    }

    #[test]
    fn duration_clamped() {
        let m = netflix_like();
        assert!(m.duration_for(1e-9) >= 1.0);
        assert!(m.duration_for(1e12) <= 86_400.0);
    }

    #[test]
    fn sampled_volumes_reflect_peaks() {
        let m = netflix_like();
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 50_000;
        let near_peak = (0..n)
            .map(|_| m.sample_volume(&mut rng).log10())
            .filter(|u| (u - 1.60).abs() < 0.25)
            .count();
        // Peak mass k / (1+Σk) ≈ 0.154 plus the main's own density there.
        let frac = near_peak as f64 / n as f64;
        assert!(frac > 0.15, "fraction near 40 MB peak: {frac}");
    }

    #[test]
    fn sample_session_consistency() {
        let m = netflix_like();
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..100 {
            let (v, d, t) = m.sample_session(&mut rng);
            assert!(v > 0.0 && d >= 1.0);
            assert!((t - v * 8.0 / d).abs() < 1e-12);
        }
    }

    #[test]
    fn serde_roundtrip() {
        if !crate::json_runtime_available() {
            return; // offline stub cannot round-trip serde JSON
        }
        let m = netflix_like();
        let json = serde_json::to_string(&m).unwrap();
        let back: ServiceModel = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }
}
