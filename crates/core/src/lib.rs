//! # mtd-core — session-level mobile traffic models (the paper's §5)
//!
//! The primary contribution of the paper, as a library:
//!
//! - [`arrival`] — the §5.1 bimodal session-arrival model: Gaussian peak
//!   mode fitted per BS-load decile with the `σ = μ/10` regularity, Pareto
//!   off-peak mode with fixed shape `b = 1.765`, and the constant
//!   per-service breakdown of arrivals.
//! - [`volume`] — the §5.2 log-normal mixture algorithm for the traffic
//!   volume PDF `F_s(x)`: main log-normal fit, Savitzky–Golay residual
//!   peak detection, ≤ 3 scaled log-normal peak components, Eq. (5)
//!   composition.
//! - [`duration`] — the §5.3 power-law model `v_s(d) = α_s·d^{β_s}`
//!   fitted with Levenberg–Marquardt.
//! - [`model`] / [`registry`] — the released per-service parameter tuples
//!   `[μ_s, σ_s, {k_n, μ_n, σ_n}, α_s, β_s]` (§5.4) with serde
//!   persistence.
//! - [`pipeline`] — fits the full registry from a measurement
//!   [`mtd_dataset::Dataset`].
//! - [`throughput`] — the derived per-session throughput distribution
//!   (§1's third session-level feature).
//! - [`generator`] — synthesizes session-level traffic from the models
//!   (§5.4 usage: volume from `F̂_s`, duration via `v⁻¹`, throughput as
//!   their ratio), the capability the §6 use cases build on.

// `!(x > 0.0)` deliberately rejects NaN along with non-positive values.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod arrival;
pub mod duration;
pub mod generator;
pub mod model;
pub mod pipeline;
pub mod plan;
pub mod refit;
pub mod registry;
pub mod throughput;
pub mod validation;
pub mod volume;

/// Offline builds link a typecheck-only serde/serde_json stub that cannot
/// round-trip (see CONTRIBUTING.md, "Offline builds & test triage"); tests
/// exercising serde persistence or the embedded released registry guard on
/// this probe and skip when only the stub is available.
#[cfg(test)]
pub(crate) fn json_runtime_available() -> bool {
    serde_json::from_str::<u32>("1").is_ok()
}

pub use arrival::{ArrivalModel, ArrivalModelSet, ServiceBreakdown};
pub use generator::{GeneratedSession, SessionGenerator};
pub use model::{ModelQuality, PeakComponent, ServiceModel};
pub use plan::ServingPlan;
pub use registry::ModelRegistry;
