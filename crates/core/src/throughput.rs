//! Derived throughput statistics.
//!
//! §1 lists among the session-level targets "the distribution of average
//! throughput that the combinations of such duration and load statistics
//! entail", and §5.4 defines it operationally: volume from `F̂_s`,
//! duration via `v⁻¹`, throughput as their ratio. This module derives
//! that distribution from a [`ServiceModel`] — in closed form for the
//! paper's deterministic inverse, by Monte Carlo when the fitted duration
//! scatter is enabled.

use crate::model::ServiceModel;
use mtd_math::histogram::{BinnedPdf, LogGrid, LogHistogram};
use mtd_math::stats::percentile_sorted;
use mtd_math::{MathError, Result};
use rand::Rng;

/// Quantiles of the per-session mean throughput (Mbit/s).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputQuantiles {
    pub p10: f64,
    pub median: f64,
    pub p90: f64,
    pub mean: f64,
}

impl ThroughputQuantiles {
    /// Computes the summary from raw per-session throughputs, with the
    /// shared [`percentile_sorted`] interpolation between order
    /// statistics (flooring the fractional rank instead biases p90 low).
    pub fn from_samples(samples: &[f64]) -> Result<Self> {
        if samples.len() < 10 {
            return Err(MathError::EmptyInput(
                "throughput quantiles need >= 10 samples",
            ));
        }
        let mut ts = samples.to_vec();
        ts.sort_by(f64::total_cmp);
        Ok(ThroughputQuantiles {
            p10: percentile_sorted(&ts, 0.10)?,
            median: percentile_sorted(&ts, 0.50)?,
            p90: percentile_sorted(&ts, 0.90)?,
            mean: ts.iter().sum::<f64>() / ts.len() as f64,
        })
    }
}

/// Deterministic throughput at a given volume (the paper's §5.4 map):
/// `θ(v) = v·8 / v⁻¹(v)`, i.e. `8·α^{1/β} · v^{(β−1)/β}` inside the
/// clamp region — monotone increasing in `v` exactly when `β > 1`.
#[must_use]
pub fn throughput_at_volume(model: &ServiceModel, volume_mb: f64) -> f64 {
    volume_mb * 8.0 / model.duration_for(volume_mb)
}

/// Monte-Carlo estimate of the throughput distribution (Mbit/s) as a
/// binned PDF over `grid`, honoring the model's `duration_sigma`.
pub fn throughput_pdf<R: Rng + ?Sized>(
    model: &ServiceModel,
    grid: LogGrid,
    samples: usize,
    rng: &mut R,
) -> Result<BinnedPdf> {
    if samples == 0 {
        return Err(MathError::EmptyInput("throughput_pdf needs samples > 0"));
    }
    let mut hist = LogHistogram::new(grid);
    for _ in 0..samples {
        let (_, _, t) = model.sample_session(rng);
        hist.add(t);
    }
    hist.to_pdf()
}

/// Monte-Carlo throughput quantiles.
pub fn throughput_quantiles<R: Rng + ?Sized>(
    model: &ServiceModel,
    samples: usize,
    rng: &mut R,
) -> Result<ThroughputQuantiles> {
    if samples < 10 {
        return Err(MathError::EmptyInput(
            "throughput_quantiles needs >= 10 samples",
        ));
    }
    let ts: Vec<f64> = (0..samples).map(|_| model.sample_session(rng).2).collect();
    ThroughputQuantiles::from_samples(&ts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ModelQuality, ServiceModel};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn model(beta: f64, duration_sigma: f64) -> ServiceModel {
        ServiceModel {
            name: "t".into(),
            mu: 1.0,
            sigma: 0.5,
            peaks: vec![],
            alpha: 0.01,
            beta,
            session_share: 1.0,
            duration_sigma,
            support_log10: (-3.0, 4.0),
            quality: ModelQuality::default(),
        }
    }

    #[test]
    fn superlinear_throughput_grows_with_volume() {
        let m = model(1.5, 0.0);
        let lo = throughput_at_volume(&m, 1.0);
        let hi = throughput_at_volume(&m, 100.0);
        assert!(hi > lo, "super-linear: {hi} vs {lo}");
        // Sub-linear: throughput decays with volume (α chosen so the
        // inverse stays inside the duration clamp for both volumes).
        let mut m = model(0.5, 0.0);
        m.alpha = 1.0;
        assert!(throughput_at_volume(&m, 100.0) < throughput_at_volume(&m, 1.0));
        // Linear: constant 8·α.
        let m = model(1.0, 0.0);
        let a = throughput_at_volume(&m, 1.0);
        let b = throughput_at_volume(&m, 100.0);
        assert!((a - b).abs() < 1e-9);
        assert!((a - 0.08).abs() < 1e-9);
    }

    #[test]
    fn quantiles_are_ordered_and_match_map() {
        let m = model(1.3, 0.0);
        let mut rng = SmallRng::seed_from_u64(1);
        let q = throughput_quantiles(&m, 20_000, &mut rng).unwrap();
        assert!(q.p10 <= q.median && q.median <= q.p90);
        // With zero scatter, the median throughput equals the throughput
        // at the median volume (the map is monotone for β > 1).
        let median_volume = 10f64.powf(m.mu);
        let expect = throughput_at_volume(&m, median_volume);
        assert!(
            (q.median - expect).abs() / expect < 0.05,
            "{} vs {expect}",
            q.median
        );
    }

    #[test]
    fn scatter_widens_the_distribution() {
        let mut rng = SmallRng::seed_from_u64(2);
        let tight = throughput_quantiles(&model(1.3, 0.0), 20_000, &mut rng).unwrap();
        let wide = throughput_quantiles(&model(1.3, 0.3), 20_000, &mut rng).unwrap();
        let spread = |q: &ThroughputQuantiles| q.p90 / q.p10;
        assert!(spread(&wide) > 1.5 * spread(&tight));
    }

    #[test]
    fn pdf_is_normalized() {
        let m = model(0.7, 0.1);
        let mut rng = SmallRng::seed_from_u64(3);
        let grid = LogGrid::new(-4.0, 3.0, 140).unwrap();
        let pdf = throughput_pdf(&m, grid, 10_000, &mut rng).unwrap();
        let mass: f64 = pdf.density().iter().sum::<f64>() * pdf.grid().bin_width();
        assert!((mass - 1.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles_interpolate_between_order_statistics() {
        let xs: Vec<f64> = (0..10).map(f64::from).collect();
        let q = ThroughputQuantiles::from_samples(&xs).unwrap();
        // p90 of 0..=9 is 8.1 by interpolation; floor indexing gave 8.0.
        assert!((q.p90 - 8.1).abs() < 1e-12, "p90 {}", q.p90);
        assert!((q.p10 - 0.9).abs() < 1e-12);
        assert!((q.median - 4.5).abs() < 1e-12);
        assert!((q.mean - 4.5).abs() < 1e-12);
        assert!(ThroughputQuantiles::from_samples(&xs[..5]).is_err());
    }

    #[test]
    fn input_validation() {
        let m = model(1.0, 0.0);
        let mut rng = SmallRng::seed_from_u64(4);
        let grid = LogGrid::new(-4.0, 3.0, 10).unwrap();
        assert!(throughput_pdf(&m, grid, 0, &mut rng).is_err());
        assert!(throughput_quantiles(&m, 5, &mut rng).is_err());
    }
}
