//! Synthetic session-level traffic generation from the fitted models.
//!
//! This is the capability the paper releases the models *for* (§5.4): a
//! consumer picks a BS load decile, and the generator emits per-minute
//! session arrivals (bimodal §5.1 model), assigns each to a service
//! (Table 1 breakdown), and draws its volume from the Eq. (5) mixture,
//! its duration via the inverse power law `v⁻¹`, and its throughput as
//! the ratio. Both §6 use cases consume this stream.

use crate::plan::ServingPlan;
use crate::registry::ModelRegistry;
use mtd_math::Result;
use rand::Rng;

/// One generated session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneratedSession {
    /// Start second within the day (0 .. 86400).
    pub start_s: f64,
    /// Service index into the registry.
    pub service: u16,
    /// Total session volume, MB.
    pub volume_mb: f64,
    /// Session duration, seconds.
    pub duration_s: f64,
    /// Mean throughput, Mbit/s.
    pub throughput_mbps: f64,
}

/// Generates model-driven session traffic for one BS.
///
/// A thin borrow-friendly wrapper over [`ServingPlan`]: construction
/// compiles a plan from a clone of the registry (cheap — parameters,
/// not data), and sampling delegates draw-for-draw, so generator and
/// plan emit identical streams from identical seeds.
pub struct SessionGenerator<'a> {
    registry: &'a ModelRegistry,
    plan: ServingPlan,
}

impl<'a> SessionGenerator<'a> {
    /// Creates a generator over a fitted registry. Errors when the
    /// registry carries no arrival models (tolerant store loads can
    /// produce such registries) or no usable service shares.
    pub fn new(registry: &'a ModelRegistry) -> Result<SessionGenerator<'a>> {
        Ok(SessionGenerator {
            registry,
            plan: ServingPlan::compile(registry.clone())?,
        })
    }

    /// The registry backing this generator.
    #[must_use]
    pub fn registry(&self) -> &ModelRegistry {
        self.registry
    }

    /// Generates the sessions arriving in one minute at a BS of the given
    /// load decile. `minute_of_day` selects the §5.1 regime (peak vs
    /// off-peak).
    pub fn generate_minute<R: Rng + ?Sized>(
        &self,
        decile: u8,
        minute_of_day: u32,
        rng: &mut R,
    ) -> Vec<GeneratedSession> {
        self.plan.generate_minute(decile, minute_of_day, rng)
    }

    /// Generates one full day of sessions at a BS of the given decile,
    /// ordered by start time.
    pub fn generate_day<R: Rng + ?Sized>(&self, decile: u8, rng: &mut R) -> Vec<GeneratedSession> {
        self.plan.generate_day(decile, rng)
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::arrival::{ArrivalModel, ArrivalModelSet, PARETO_SHAPE};
    use crate::model::{ModelQuality, PeakComponent, ServiceModel};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// A small two-service, ten-decile registry, shared with the plan
    /// tests (and anything else needing a serde-free fixture).
    pub(crate) fn registry() -> ModelRegistry {
        ModelRegistry {
            services: vec![
                ServiceModel {
                    name: "Messaging".into(),
                    mu: -0.2,
                    sigma: 0.6,
                    peaks: vec![],
                    alpha: 0.1,
                    beta: 0.6,
                    session_share: 0.8,
                    duration_sigma: 0.0,
                    support_log10: (-3.0, 4.0),
                    quality: ModelQuality::default(),
                },
                ServiceModel {
                    name: "Streaming".into(),
                    mu: 1.5,
                    sigma: 0.5,
                    peaks: vec![PeakComponent {
                        k: 0.15,
                        mu: 2.2,
                        sigma: 0.08,
                    }],
                    alpha: 0.003,
                    beta: 1.5,
                    session_share: 0.2,
                    duration_sigma: 0.0,
                    support_log10: (-3.0, 4.0),
                    quality: ModelQuality::default(),
                },
            ],
            arrivals: ArrivalModelSet {
                per_decile: (0..10)
                    .map(|d| {
                        let mu = 2.0 + f64::from(d) * 3.0;
                        ArrivalModel {
                            peak_mu: mu,
                            peak_sigma: mu / 10.0,
                            pareto_shape: PARETO_SHAPE,
                            pareto_scale: mu / 20.0,
                        }
                    })
                    .collect(),
            },
        }
    }

    #[test]
    fn generates_bimodal_day() {
        let r = registry();
        let g = SessionGenerator::new(&r).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        let day = g.generate_day(5, &mut rng);
        assert!(day.len() > 5_000, "day sessions {}", day.len());
        let peak = day
            .iter()
            .filter(|s| mtd_netsim::time::is_peak_minute((s.start_s / 60.0) as u32))
            .count();
        let off = day.len() - peak;
        // 14 h of ~17/min vs 10 h of ~2/min.
        assert!(peak > 4 * off, "peak {peak} off {off}");
    }

    #[test]
    fn service_mix_follows_breakdown() {
        let r = registry();
        let g = SessionGenerator::new(&r).unwrap();
        let mut rng = SmallRng::seed_from_u64(2);
        let day = g.generate_day(9, &mut rng);
        let streaming = day.iter().filter(|s| s.service == 1).count() as f64 / day.len() as f64;
        assert!(
            (streaming - 0.2).abs() < 0.02,
            "streaming share {streaming}"
        );
    }

    #[test]
    fn generated_sessions_are_consistent() {
        let r = registry();
        let g = SessionGenerator::new(&r).unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        for s in g.generate_minute(3, 12 * 60, &mut rng) {
            assert!(s.volume_mb > 0.0);
            assert!(s.duration_s >= 1.0);
            assert!((s.throughput_mbps - s.volume_mb * 8.0 / s.duration_s).abs() < 1e-9);
            assert!(s.start_s >= 12.0 * 3600.0 && s.start_s < 12.0 * 3600.0 + 60.0);
        }
    }

    #[test]
    fn empty_arrival_registry_is_rejected() {
        let mut r = registry();
        r.arrivals.per_decile.clear();
        assert!(SessionGenerator::new(&r).is_err());
    }

    #[test]
    fn last_minute_sessions_start_within_day_and_spill_past_midnight() {
        // Sessions generated in minute 1439 start before midnight; their
        // durations may run past 86400 s. The generator keeps the start
        // inside the day — attributing the spill is the consumer's job
        // (pinned by the netsim fragmentation and dataset tests).
        let r = registry();
        let g = SessionGenerator::new(&r).unwrap();
        let mut rng = SmallRng::seed_from_u64(7);
        let mut saw_spill = false;
        for _ in 0..50 {
            for s in g.generate_minute(9, 1439, &mut rng) {
                assert!(s.start_s >= 1439.0 * 60.0 && s.start_s < 86_400.0);
                if s.start_s + s.duration_s > 86_400.0 {
                    saw_spill = true;
                }
            }
        }
        assert!(saw_spill, "expected sessions spilling past midnight");
    }

    #[test]
    fn higher_deciles_generate_more_sessions() {
        let r = registry();
        let g = SessionGenerator::new(&r).unwrap();
        let mut rng = SmallRng::seed_from_u64(4);
        let lo = g.generate_day(0, &mut rng).len();
        let hi = g.generate_day(9, &mut rng).len();
        assert!(hi > 3 * lo, "lo {lo} hi {hi}");
    }

    #[test]
    fn streaming_sessions_carry_more_volume() {
        let r = registry();
        let g = SessionGenerator::new(&r).unwrap();
        let mut rng = SmallRng::seed_from_u64(5);
        let day = g.generate_day(9, &mut rng);
        let mean = |svc: u16| {
            let v: Vec<f64> = day
                .iter()
                .filter(|s| s.service == svc)
                .map(|s| s.volume_mb)
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        assert!(mean(1) > 10.0 * mean(0));
    }
}
