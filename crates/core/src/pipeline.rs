//! The end-to-end fitting pipeline: measurement dataset → model registry.
//!
//! For every service: fit the §5.2 log-normal mixture to its Eq. (2)
//! all-BS/all-day volume PDF, and the §5.3 power law to its Eq. (1)
//! duration–volume pairs. For every BS-load decile: fit the §5.1 bimodal
//! arrival model. The result is the released [`ModelRegistry`].

use crate::arrival::{ArrivalModel, ArrivalModelSet};
use crate::duration::fit_duration_power_law;
use crate::model::{ModelQuality, ServiceModel};
use crate::registry::ModelRegistry;
use crate::volume::{fit_volume_mixture, VolumeFitConfig};
use mtd_dataset::{Dataset, DatasetAssembler, DatasetStream, SliceFilter, StoreError, StoreReport};
use mtd_math::{MathError, Result};
use std::path::Path;

/// Fits the complete model registry from a measurement dataset.
///
/// Services with no measured sessions are skipped (they cannot be
/// modeled); an error is returned only when *nothing* can be fitted.
pub fn fit_registry(dataset: &Dataset) -> Result<ModelRegistry> {
    fit_registry_with(dataset, &VolumeFitConfig::default())
}

/// [`fit_registry`] with explicit volume-fit tunables, fanned out on the
/// process-wide [`mtd_par::pool`].
pub fn fit_registry_with(
    dataset: &Dataset,
    volume_config: &VolumeFitConfig,
) -> Result<ModelRegistry> {
    fit_registry_pooled(dataset, volume_config, &mtd_par::pool())
}

/// [`fit_registry_with`] on an explicit pool. Per-service volume+duration
/// fits and per-decile arrival fits are independent, so they fan out as
/// parallel jobs; results return in input order, which makes the output
/// **bit-identical** for every thread count (and keeps the "first error
/// in service order" semantics of the sequential walk).
pub fn fit_registry_pooled(
    dataset: &Dataset,
    volume_config: &VolumeFitConfig,
    pool: &mtd_par::Pool,
) -> Result<ModelRegistry> {
    let _span = mtd_telemetry::span!("fit.registry");
    let all = SliceFilter::all();
    let total_sessions: f64 = (0..dataset.n_services())
        .map(|s| dataset.sessions(s as u16, &all))
        .sum();
    if total_sessions <= 0.0 {
        return Err(MathError::EmptyInput("fit_registry: empty dataset"));
    }

    let mut candidates: Vec<(u16, f64)> = Vec::with_capacity(dataset.n_services());
    for s in 0..dataset.n_services() as u16 {
        let sessions = dataset.sessions(s, &all);
        if sessions <= 0.0 {
            mtd_telemetry::count("fit.service.skipped_empty", 1);
        } else {
            candidates.push((s, sessions));
        }
    }

    if mtd_telemetry::enabled() {
        // Heartbeat progress: one unit per service fit plus one per
        // arrival decile fit below.
        mtd_telemetry::gauge_set("progress.total_units", (candidates.len() + 10) as f64);
    }
    // Contiguous grains amortize job scheduling and keep each worker's
    // thread-local FitArena warm across consecutive services.
    let fitted = pool.par_map_chunked(candidates.len(), pool.auto_grain(candidates.len()), |i| {
        let (s, sessions) = candidates[i];
        let model = fit_service(dataset, s, sessions, total_sessions, volume_config);
        if mtd_telemetry::enabled() {
            mtd_telemetry::count("progress.done_units", 1);
            mtd_telemetry::flush_thread();
        }
        model
    });
    let mut services = Vec::with_capacity(fitted.len());
    for model in fitted {
        services.push(model?);
    }
    if services.is_empty() {
        return Err(MathError::EmptyInput("fit_registry: no service fitted"));
    }

    let _arrivals_span = mtd_telemetry::span!("arrivals");
    // The "reuse previous decile" fallback is a sequential dependency, so
    // only the fits themselves fan out; gaps are filled in order after.
    let decile_fits = pool.par_map_indexed(10, |d| {
        let d = d as u8;
        let peak = dataset.arrival_counts_windowed(d, true);
        let off = dataset.arrival_counts_windowed(d, false);
        let fit = if peak.len() < 2 {
            None
        } else {
            Some(ArrivalModel::fit(&peak, &off))
        };
        if mtd_telemetry::enabled() {
            mtd_telemetry::count("progress.done_units", 1);
            mtd_telemetry::flush_thread();
        }
        fit
    });
    let mut per_decile: Vec<ArrivalModel> = Vec::with_capacity(10);
    for fit in decile_fits {
        match fit {
            Some(result) => per_decile.push(result?),
            None => {
                // Tiny scenarios may not populate every decile; reuse the
                // previous decile's model rather than leaving a hole.
                mtd_telemetry::count("fit.arrival.decile_reused", 1);
                let prev = per_decile.last().copied().ok_or(MathError::EmptyInput(
                    "fit_registry: no arrival data in the first decile",
                ))?;
                per_decile.push(prev);
            }
        }
    }
    drop(_arrivals_span);

    Ok(ModelRegistry {
        services,
        arrivals: ArrivalModelSet { per_decile },
    })
}

/// One service's complete fit — the unit of parallel work in
/// [`fit_registry_pooled`].
fn fit_service(
    dataset: &Dataset,
    s: u16,
    sessions: f64,
    total_sessions: f64,
    volume_config: &VolumeFitConfig,
) -> Result<ServiceModel> {
    let all = SliceFilter::all();
    let _span = mtd_telemetry::span!("service");
    let pdf = dataset.volume_pdf(s, &all)?;
    let vfit = {
        let _span = mtd_telemetry::span!("volume_mixture");
        fit_volume_mixture(&pdf, volume_config)?
    };
    mtd_telemetry::observe_labeled("fit.volume.emd", dataset.service_name(s), vfit.emd);

    let pairs = dataset.duration_pairs(s, &all);
    // Rare services may populate too few duration bins for the power
    // law; fall back to a neutral β = 1 anchored at the mean volume
    // (flagged by r2 = 0 so consumers can tell).
    let _pl_span = mtd_telemetry::span!("power_law");
    let (alpha, beta, r2) = match fit_duration_power_law(&pairs) {
        Ok(f) => (f.alpha, f.beta, f.r2),
        Err(_) => {
            mtd_telemetry::count("fit.powerlaw.fallback", 1);
            (pdf.mean_linear().max(1e-6) / 60.0, 1.0, 0.0)
        }
    };
    drop(_pl_span);

    // Duration scatter: within-duration-bin volume dispersion maps to
    // duration dispersion through the power law (σ_d ≈ σ_{v|d} / β).
    let duration_sigma = if beta > 0.05 {
        (dataset.pair_dispersion(s, &all) / beta).clamp(0.0, 0.5)
    } else {
        0.0
    };

    let mut model = ServiceModel {
        name: dataset.service_name(s).to_string(),
        mu: vfit.mu,
        sigma: vfit.sigma,
        peaks: vfit.peaks,
        alpha,
        beta,
        session_share: sessions / total_sessions,
        duration_sigma,
        support_log10: (pdf.quantile_log10(0.0005), pdf.quantile_log10(0.9995)),
        quality: ModelQuality {
            volume_emd: vfit.emd,
            pair_r2: r2,
        },
    };
    // Anchor the model's linear mean to the measurement (see
    // `ServiceModel::support_log10`): the log-domain EMD is blind to
    // the upper tail, but capacity studies are not.
    model.calibrate_support(pdf.mean_linear());
    Ok(model)
}

/// Error of the streamed fit: reading the file failed, or fitting did.
#[derive(Debug)]
pub enum StreamFitError {
    /// The dataset file could not be read or decoded.
    Store(StoreError),
    /// The fit itself failed (e.g. the recovered dataset was empty).
    Math(MathError),
}

impl std::fmt::Display for StreamFitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamFitError::Store(e) => write!(f, "streamed fit: {e}"),
            StreamFitError::Math(e) => write!(f, "streamed fit: {e}"),
        }
    }
}

impl std::error::Error for StreamFitError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamFitError::Store(e) => Some(e),
            StreamFitError::Math(e) => Some(e),
        }
    }
}

impl From<StoreError> for StreamFitError {
    fn from(e: StoreError) -> Self {
        StreamFitError::Store(e)
    }
}

impl From<MathError> for StreamFitError {
    fn from(e: MathError) -> Self {
        StreamFitError::Math(e)
    }
}

/// Fits the registry straight from a binary dataset file, streaming
/// chunk-by-chunk so peak extra memory is one chunk rather than the whole
/// file image. Produces a registry bit-identical to
/// `fit_registry(&load_binary(path)?)` on an intact file.
///
/// Damaged skippable chunks are dropped (their sessions are simply absent
/// from the fit) and tallied in the returned [`StoreReport`] — callers
/// must check [`StoreReport::is_clean`] before trusting the models for
/// anything load-bearing.
pub fn fit_registry_streamed(
    path: &Path,
) -> std::result::Result<(ModelRegistry, StoreReport), StreamFitError> {
    fit_registry_streamed_with(path, &VolumeFitConfig::default())
}

/// [`fit_registry_streamed`] with explicit volume-fit tunables.
pub fn fit_registry_streamed_with(
    path: &Path,
    volume_config: &VolumeFitConfig,
) -> std::result::Result<(ModelRegistry, StoreReport), StreamFitError> {
    let stream = DatasetStream::open(path)?;
    fit_registry_from_stream(stream, volume_config)
}

/// Fits the registry from an already-opened [`DatasetStream`] over any
/// reader — a campaign store still on disk, a store piped over a socket,
/// or an in-memory image under test. The path-based entry points
/// delegate here; the equivalence is what lets the campaign runner's
/// output feed the fit without a [`Dataset`] ever materializing from a
/// file path.
pub fn fit_registry_from_stream<R: std::io::Read>(
    mut stream: DatasetStream<R>,
    volume_config: &VolumeFitConfig,
) -> std::result::Result<(ModelRegistry, StoreReport), StreamFitError> {
    let _span = mtd_telemetry::span!("fit.registry_streamed");
    // Tolerant assembly: the stream already skips damaged chunks, and the
    // point of recovery is to fit whatever survived.
    let mut assembler = DatasetAssembler::new(stream.meta().clone(), false);
    while let Some(chunk) = stream.next_chunk() {
        assembler.apply(chunk?)?;
    }
    let dataset = assembler.finish()?;
    let registry = fit_registry_with(&dataset, volume_config)?;
    Ok((registry, stream.report().clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtd_netsim::geo::Topology;
    use mtd_netsim::services::ServiceCatalog;
    use mtd_netsim::ScenarioConfig;

    fn fitted() -> (ModelRegistry, ServiceCatalog, Dataset) {
        let config = ScenarioConfig::small_test();
        let topology = Topology::generate(config.n_bs, config.seed);
        let catalog = ServiceCatalog::paper();
        let dataset = Dataset::build(&config, &topology, &catalog);
        let registry = fit_registry(&dataset).unwrap();
        (registry, catalog, dataset)
    }

    #[test]
    fn fits_every_service() {
        let (registry, catalog, _) = fitted();
        assert_eq!(registry.len(), catalog.len());
        assert!(registry.by_name("Netflix").is_some());
    }

    #[test]
    fn recovered_betas_track_ground_truth() {
        let (registry, catalog, _) = fitted();
        // Compare fitted β to ground truth for the heavyweight services
        // (plenty of sessions → tight fits). Transient fragments blur the
        // relation, so a generous tolerance is appropriate.
        for name in ["Facebook", "Instagram", "SnapChat"] {
            let truth = catalog.by_name(name).unwrap().beta;
            let fit = registry.by_name(name).unwrap().beta;
            assert!(
                (fit - truth).abs() < 0.25,
                "{name}: fitted beta {fit} vs truth {truth}"
            );
        }
    }

    #[test]
    fn streaming_vs_messaging_dichotomy_recovered() {
        let (registry, _, _) = fitted();
        let nf = registry.by_name("Netflix").unwrap().beta;
        let fb = registry.by_name("Facebook").unwrap().beta;
        assert!(nf > 1.0, "netflix beta {nf}");
        assert!(fb < 1.0, "facebook beta {fb}");
    }

    #[test]
    fn arrival_models_monotone_across_deciles() {
        let (registry, _, _) = fitted();
        assert_eq!(registry.arrivals.len(), 10);
        let first = registry.arrivals.decile(0).peak_mu;
        let last = registry.arrivals.decile(9).peak_mu;
        assert!(last > 2.0 * first, "decile means {first} .. {last}");
    }

    #[test]
    fn session_shares_sum_to_one() {
        let (registry, _, _) = fitted();
        let total: f64 = registry.services.iter().map(|s| s.session_share).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn streamed_fit_matches_in_memory_fit_exactly() {
        let config = ScenarioConfig::small_test();
        let topology = Topology::generate(config.n_bs, config.seed);
        let catalog = ServiceCatalog::paper();
        let dataset = Dataset::build(&config, &topology, &catalog);

        let dir = std::env::temp_dir().join("mtd_pipeline_stream_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.bin");
        mtd_dataset::store::save_binary(&dataset, &path).unwrap();

        let in_memory = fit_registry(&dataset).unwrap();
        let (streamed, report) = fit_registry_streamed(&path).unwrap();
        std::fs::remove_file(&path).ok();

        assert!(report.is_clean(), "{}", report.to_json());
        // Bit-identical: the streamed path assembles the same dataset, and
        // the fit is deterministic.
        assert_eq!(streamed, in_memory);
    }

    #[test]
    fn reader_based_fit_matches_path_based_fit() {
        let config = ScenarioConfig::small_test();
        let topology = Topology::generate(config.n_bs, config.seed);
        let catalog = ServiceCatalog::paper();
        let dataset = Dataset::build(&config, &topology, &catalog);
        let bytes = mtd_dataset::store::encode_binary(&dataset, 1);

        let stream = mtd_dataset::DatasetStream::from_reader(std::io::Cursor::new(&bytes)).unwrap();
        let (from_reader, report) =
            fit_registry_from_stream(stream, &VolumeFitConfig::default()).unwrap();
        assert!(report.is_clean(), "{}", report.to_json());
        assert_eq!(from_reader, fit_registry(&dataset).unwrap());
    }

    #[test]
    fn streamed_fit_survives_damaged_chunk() {
        let config = ScenarioConfig::small_test();
        let topology = Topology::generate(config.n_bs, config.seed);
        let catalog = ServiceCatalog::paper();
        let dataset = Dataset::build(&config, &topology, &catalog);

        let mut bytes = mtd_dataset::store::encode_binary(&dataset, 1);
        // Flip one byte near the end of the file body: the last Minutes
        // chunk's payload (well before the 21-byte footer frame).
        let idx = bytes.len() - 60;
        bytes[idx] ^= 0xFF;
        let dir = std::env::temp_dir().join("mtd_pipeline_stream_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds_damaged.bin");
        std::fs::write(&path, &bytes).unwrap();

        let (registry, report) = fit_registry_streamed(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(!report.is_clean());
        assert_eq!(report.corrupt_chunks, 1);
        assert!(!registry.services.is_empty());
    }

    #[test]
    fn model_emd_is_small() {
        // §5.4: model-vs-measurement EMD should be far below inter-service
        // distances (which are O(0.1..1) on the log axis).
        let (registry, _, dataset) = fitted();
        let fb_id = dataset.service_by_name("Facebook").unwrap();
        let measured = dataset.volume_pdf(fb_id, &SliceFilter::all()).unwrap();
        let model = registry.by_name("Facebook").unwrap();
        let reconstructed = model.to_binned_pdf(*measured.grid()).unwrap();
        let emd = mtd_math::emd::emd_same_grid(&reconstructed, &measured).unwrap();
        assert!(emd < 0.08, "facebook model emd {emd}");
        assert!((model.quality.volume_emd - emd).abs() < 1e-9);
    }
}
