//! Shard/thread invariance battery.
//!
//! The campaign runner's core promise: for ANY shard count and ANY
//! thread count, the assembled store is **byte-identical** to the
//! monolithic pipeline's `encode_binary(Dataset::build(..), 1)`. The
//! golden bytes are computed at runtime from the same scenario — never
//! pinned constants — so the battery keeps proving the equivalence as
//! the pipeline evolves.

use mtd_campaign::{run, status, CampaignConfig, CampaignError};
use mtd_dataset::Dataset;
use mtd_netsim::geo::Topology;
use mtd_netsim::services::ServiceCatalog;
use mtd_netsim::ScenarioConfig;
use std::path::PathBuf;
use std::sync::OnceLock;

fn scenario() -> ScenarioConfig {
    ScenarioConfig {
        n_bs: 14,
        days: 2,
        arrival_scale: 0.05,
        ..ScenarioConfig::small_test()
    }
}

fn workdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("mtd_campaign_invariance")
        .join(name);
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Golden store bytes from the monolithic pipeline, computed at runtime.
fn golden() -> &'static Vec<u8> {
    static GOLDEN: OnceLock<Vec<u8>> = OnceLock::new();
    GOLDEN.get_or_init(|| {
        let config = scenario();
        let topology = Topology::generate(config.n_bs, config.seed);
        let catalog = ServiceCatalog::paper();
        let ds = Dataset::build(&config, &topology, &catalog);
        mtd_dataset::store::encode_binary(&ds, 1)
    })
}

fn campaign_config(name: &str, shards: u32, threads: usize) -> CampaignConfig {
    let dir = workdir(name);
    CampaignConfig {
        scenario: scenario(),
        shards,
        threads,
        out: dir.join("store.mtdstore"),
        dir,
        kill_after: None,
        refit_window: None,
    }
}

#[test]
fn campaign_store_is_byte_identical_for_any_shard_and_thread_count() {
    let golden = golden();
    // Shard counts spanning 1 (degenerate), coprime-with-n_bs, and more
    // shards than stations (clamped); thread counts 1 and 4.
    for (shards, threads) in [
        (1u32, 1usize),
        (2, 1),
        (7, 1),
        (32, 1),
        (2, 4),
        (7, 4),
        (32, 4),
    ] {
        let name = format!("k{shards}-t{threads}");
        let config = campaign_config(&name, shards, threads);
        let report = run(&config).unwrap_or_else(|e| panic!("{name}: {e}"));
        let bytes = std::fs::read(&config.out).unwrap();
        assert_eq!(
            bytes, *golden,
            "store bytes diverged from the monolithic golden at {name}"
        );
        assert_eq!(report.store_bytes, bytes.len() as u64, "{name}");
        assert_eq!(report.store_digest, mtd_campaign::fnv64(&bytes), "{name}");

        // The assembled store is a valid MTDSTORE, not just matching bytes.
        let back = mtd_dataset::store::decode_binary(&bytes, 1)
            .unwrap_or_else(|e| panic!("{name}: decode: {e}"));
        assert_eq!(
            mtd_dataset::store::encode_binary(&back, 1),
            *golden,
            "{name}: re-encode"
        );
        std::fs::remove_dir_all(&config.dir).ok();
    }
}

#[test]
fn digest_invariance_holds_across_seeds() {
    // A small seed sweep: every seed gets its own runtime golden; the
    // campaign must match each one. Guards against an invariance that
    // accidentally only holds for one RNG stream.
    for seed in [7u64, 1234, 0xDEAD] {
        let mut config = campaign_config(&format!("seed-{seed}"), 3, 1);
        config.scenario.seed = seed;
        config.scenario.n_bs = 9;
        config.scenario.days = 1;

        let topology = Topology::generate(config.scenario.n_bs, seed);
        let catalog = ServiceCatalog::paper();
        let ds = Dataset::build(&config.scenario, &topology, &catalog);
        let golden = mtd_dataset::store::encode_binary(&ds, 1);

        run(&config).unwrap();
        let bytes = std::fs::read(&config.out).unwrap();
        assert_eq!(bytes, golden, "seed {seed}");
        std::fs::remove_dir_all(&config.dir).ok();
    }
}

#[test]
fn status_tracks_progress_and_run_refuses_to_clobber() {
    let config = campaign_config("status", 2, 1);
    let report = run(&config).unwrap();
    assert_eq!(report.shards, 2);

    let s = status(&config.dir).unwrap();
    assert_eq!(s.pass1_done, 2);
    assert_eq!(s.pass2_done, 2);
    assert!(s.assembled);
    assert_eq!(s.n_bs, config.scenario.n_bs);

    // A directory with a manifest refuses a fresh `run`.
    assert!(matches!(
        run(&config),
        Err(CampaignError::AlreadyStarted(_))
    ));

    // Status on an empty directory is a structured NotStarted.
    let empty = workdir("status-empty");
    std::fs::create_dir_all(&empty).unwrap();
    assert!(matches!(status(&empty), Err(CampaignError::NotStarted(_))));
    std::fs::remove_dir_all(&config.dir).ok();
    std::fs::remove_dir_all(&empty).ok();
}
