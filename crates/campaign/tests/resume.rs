//! Resume-equivalence battery.
//!
//! Kill the campaign after every checkpoint (all `2K` of them), resume,
//! and demand the final store and manifest are byte-identical to an
//! uninterrupted run — which is itself byte-identical to the monolithic
//! pipeline. Also drives the failure edges: a manifest torn mid-write by
//! injected store faults must be *detected* (structured error, never
//! half-trusted), and corrupt or missing spill files must be refused
//! with their shard named.

use mtd_campaign::{resume, run, CampaignConfig, CampaignError, Manifest};
use mtd_dataset::Dataset;
use mtd_fault::{self as fault, FaultPlan};
use mtd_netsim::geo::Topology;
use mtd_netsim::services::ServiceCatalog;
use mtd_netsim::ScenarioConfig;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// The fault runtime is process-global; every test serializes on this.
fn fault_lock() -> MutexGuard<'static, ()> {
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    GATE.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

const SHARDS: u32 = 3;

fn scenario() -> ScenarioConfig {
    ScenarioConfig {
        n_bs: 10,
        days: 1,
        arrival_scale: 0.08,
        ..ScenarioConfig::small_test()
    }
}

fn workdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("mtd_campaign_resume").join(name);
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn campaign_config(name: &str) -> CampaignConfig {
    let dir = workdir(name);
    CampaignConfig {
        scenario: scenario(),
        shards: SHARDS,
        threads: 1,
        out: dir.join("store.mtdstore"),
        dir,
        kill_after: None,
        refit_window: None,
    }
}

/// Monolithic golden bytes, computed at runtime.
fn golden() -> &'static Vec<u8> {
    static GOLDEN: OnceLock<Vec<u8>> = OnceLock::new();
    GOLDEN.get_or_init(|| {
        let config = scenario();
        let topology = Topology::generate(config.n_bs, config.seed);
        let catalog = ServiceCatalog::paper();
        let ds = Dataset::build(&config, &topology, &catalog);
        mtd_dataset::store::encode_binary(&ds, 1)
    })
}

/// Manifest of an uninterrupted campaign run, for field-exact comparison
/// with every kill/resume history.
fn golden_manifest() -> &'static Manifest {
    static GOLDEN: OnceLock<Manifest> = OnceLock::new();
    GOLDEN.get_or_init(|| {
        let config = campaign_config("golden");
        run(&config).expect("uninterrupted run");
        let bytes = std::fs::read(&config.out).unwrap();
        assert_eq!(
            bytes,
            *golden(),
            "uninterrupted campaign matches monolithic"
        );
        Manifest::load(&config.manifest_path()).unwrap()
    })
}

#[test]
fn kill_at_every_checkpoint_then_resume_reproduces_the_golden_bytes() {
    let _g = fault_lock();
    assert!(fault::compiled_in(), "battery needs mtd-fault/fault-inject");
    let expected_manifest = golden_manifest().clone();

    // p=1 kill: every checkpoint fires, so each run/resume call advances
    // exactly one shard before dying — the walk visits every one of the
    // 2K kill points in a single history.
    let plan = FaultPlan::parse("campaign.shard.kill=1", 0xC4A0_5EED).expect("spec parses");
    fault::install(plan);
    let config = campaign_config("kill-walk");
    let total = u64::from(2 * SHARDS);

    let first = run(&config);
    assert!(
        matches!(first, Err(CampaignError::Killed { checkpoint: 0 })),
        "{first:?}"
    );
    for expect in 1..total {
        let r = resume(&config);
        match r {
            Err(CampaignError::Killed { checkpoint }) => {
                assert_eq!(checkpoint, expect, "kill walk out of order")
            }
            other => panic!("expected Killed at {expect}, got {other:?}"),
        }
    }
    // All 2K checkpoints are durable; the final resume only assembles.
    let report = resume(&config).expect("final resume completes");
    fault::clear();

    let bytes = std::fs::read(&config.out).unwrap();
    assert_eq!(bytes, *golden(), "bytes after 2K kills + resumes");
    assert_eq!(report.store_digest, mtd_campaign::fnv64(golden()));
    let manifest = Manifest::load(&config.manifest_path()).unwrap();
    assert_eq!(manifest, expected_manifest, "manifest after kill walk");
    std::fs::remove_dir_all(&config.dir).ok();
}

#[test]
fn single_kill_at_each_checkpoint_via_kill_after_matches_golden() {
    let _g = fault_lock();
    let expected_manifest = golden_manifest().clone();

    // The deterministic CLI/CI kill switch: one kill at checkpoint c,
    // one resume to the end, for every c.
    for c in 0..u64::from(2 * SHARDS) {
        let mut config = campaign_config(&format!("kill-after-{c}"));
        config.kill_after = Some(c);
        let killed = run(&config);
        assert!(
            matches!(killed, Err(CampaignError::Killed { checkpoint }) if checkpoint == c),
            "c={c}: {killed:?}"
        );

        config.kill_after = None;
        resume(&config).unwrap_or_else(|e| panic!("resume after kill {c}: {e}"));
        let bytes = std::fs::read(&config.out).unwrap();
        assert_eq!(bytes, *golden(), "kill point {c}");
        let manifest = Manifest::load(&config.manifest_path()).unwrap();
        assert_eq!(manifest, expected_manifest, "manifest, kill point {c}");
        std::fs::remove_dir_all(&config.dir).ok();
    }
}

#[test]
fn manifest_torn_mid_write_is_detected_not_half_trusted() {
    let _g = fault_lock();
    // `skip_atomic` disables the temp-file + rename protocol and `short`
    // tears the write — composing them leaves a truncated manifest at
    // the real path, exactly what a crash mid-write would leave without
    // atomicity.
    let plan = FaultPlan::parse("store.write.skip_atomic=1,store.write.short=1", 0xBAD_F11E)
        .expect("spec parses");
    fault::install(plan);
    let config = campaign_config("torn-manifest");
    let r = run(&config);
    fault::clear();

    // The save itself reports the injected I/O failure...
    assert!(matches!(r, Err(CampaignError::Store(_))), "{r:?}");
    // ...and the bytes it left behind fail the CRC wholesale: a torn
    // manifest is a structured error from load and resume alike, never a
    // partially-parsed checkpoint.
    let loaded = Manifest::load(&config.manifest_path());
    assert!(
        matches!(loaded, Err(CampaignError::TornManifest(_))),
        "{loaded:?}"
    );
    let resumed = resume(&config);
    assert!(
        matches!(resumed, Err(CampaignError::TornManifest(_))),
        "{resumed:?}"
    );
    std::fs::remove_dir_all(&config.dir).ok();
}

#[test]
fn corrupt_or_missing_spills_are_refused_with_shard_attribution() {
    let _g = fault_lock();
    let mut config = campaign_config("spill-damage");
    // Stop right after pass-2 shard 0's spill is durable.
    config.kill_after = Some(u64::from(SHARDS));
    let killed = run(&config);
    assert!(
        matches!(killed, Err(CampaignError::Killed { .. })),
        "{killed:?}"
    );
    config.kill_after = None;

    let spill = config.spill_path(0);
    let pristine = std::fs::read(&spill).unwrap();

    // Corrupt one byte: resume names the shard.
    let mut bad = pristine.clone();
    let mid = bad.len() / 2;
    bad[mid] ^= 0x04;
    std::fs::write(&spill, &bad).unwrap();
    let r = resume(&config);
    assert!(
        matches!(r, Err(CampaignError::SpillCorrupt { shard: 0, .. })),
        "{r:?}"
    );

    // Missing spill: also structured.
    std::fs::remove_file(&spill).unwrap();
    let r = resume(&config);
    assert!(
        matches!(r, Err(CampaignError::SpillMissing { shard: 0, .. })),
        "{r:?}"
    );

    // Restoring the pristine bytes lets the resume finish — and the
    // result still matches the golden.
    std::fs::write(&spill, &pristine).unwrap();
    resume(&config).expect("resume after restore");
    let bytes = std::fs::read(&config.out).unwrap();
    assert_eq!(bytes, *golden());
    std::fs::remove_dir_all(&config.dir).ok();
}

#[test]
fn zero_length_spill_is_treated_as_incomplete_not_assembled_empty() {
    let _g = fault_lock();
    let expected_manifest = golden_manifest().clone();
    let mut config = campaign_config("zero-length-spill");
    // Stop right after pass-2 shard 1's spill is durable: spills 0 and 1
    // exist, the manifest says pass2_done = 2.
    config.kill_after = Some(u64::from(SHARDS) + 1);
    let killed = run(&config);
    assert!(
        matches!(killed, Err(CampaignError::Killed { .. })),
        "{killed:?}"
    );
    config.kill_after = None;

    // A kill between creating and writing the spill leaves a zero-length
    // file — truncate shard 1 to reproduce that window.
    std::fs::write(config.spill_path(1), b"").unwrap();

    // Resume must treat the shard as not-done and re-simulate it, not
    // refuse forever (SpillCorrupt) or assemble an empty shard.
    resume(&config).expect("resume past the zero-length spill");
    let bytes = std::fs::read(&config.out).unwrap();
    assert_eq!(bytes, *golden(), "bytes after zero-length spill recovery");
    let manifest = Manifest::load(&config.manifest_path()).unwrap();
    assert_eq!(manifest, expected_manifest, "manifest after recovery");
    std::fs::remove_dir_all(&config.dir).ok();
}

#[test]
fn resume_refuses_a_drifted_configuration() {
    let _g = fault_lock();
    let mut config = campaign_config("config-drift");
    config.kill_after = Some(0);
    assert!(matches!(run(&config), Err(CampaignError::Killed { .. })));
    config.kill_after = None;

    let mut drifted = config.clone();
    drifted.scenario.seed ^= 1;
    assert!(matches!(
        resume(&drifted),
        Err(CampaignError::ConfigMismatch { .. })
    ));

    let mut resharded = config.clone();
    resharded.shards = SHARDS + 1;
    assert!(matches!(
        resume(&resharded),
        Err(CampaignError::ConfigMismatch { .. })
    ));

    // The unmodified configuration still resumes to the golden bytes.
    resume(&config).unwrap();
    assert_eq!(std::fs::read(&config.out).unwrap(), *golden());
    std::fs::remove_dir_all(&config.dir).ok();
}
