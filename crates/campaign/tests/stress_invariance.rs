//! Shard/thread invariance battery for the stress scenarios.
//!
//! The campaign promise — assembled bytes identical to the monolithic
//! `encode_binary(Dataset::build(..), 1)` for any shard and thread
//! count — must survive every stress family: heavy-tail bursts (extra
//! per-session RNG draws), longitudinal drift (window-indexed shifts),
//! and control-plane coupling (a second per-BS traffic plane spilled
//! and merge-joined through the v2 store path). Goldens are computed at
//! runtime so the battery keeps proving equivalence as the scenarios
//! evolve.

use mtd_campaign::{run, CampaignConfig};
use mtd_dataset::Dataset;
use mtd_netsim::geo::Topology;
use mtd_netsim::services::ServiceCatalog;
use mtd_netsim::{ScenarioConfig, StressConfig};
use std::path::PathBuf;

fn scenario(stress: StressConfig) -> ScenarioConfig {
    ScenarioConfig {
        n_bs: 11,
        days: 2,
        arrival_scale: 0.04,
        stress,
        ..ScenarioConfig::small_test()
    }
}

fn workdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("mtd_campaign_stress_invariance")
        .join(name);
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn golden(config: &ScenarioConfig) -> Vec<u8> {
    let topology = Topology::generate(config.n_bs, config.seed);
    let catalog = ServiceCatalog::paper();
    let ds = Dataset::build(config, &topology, &catalog);
    mtd_dataset::store::encode_binary(&ds, 1)
}

fn stress_families() -> Vec<(&'static str, StressConfig)> {
    vec![
        (
            "bursts",
            StressConfig {
                burst_prob: 0.15,
                burst_tail_index: 1.2,
                burst_coupling: 0.7,
                ..StressConfig::default()
            },
        ),
        (
            "drift",
            StressConfig {
                drift_mu_per_window: 0.3,
                drift_sigma_per_window: 0.2,
                drift_window_days: 1,
                ..StressConfig::default()
            },
        ),
        (
            "control-plane",
            StressConfig {
                control_plane: true,
                ..StressConfig::default()
            },
        ),
        (
            "combined",
            StressConfig {
                burst_prob: 0.1,
                burst_tail_index: 1.3,
                burst_coupling: 0.5,
                drift_mu_per_window: 0.2,
                drift_sigma_per_window: 0.1,
                drift_window_days: 1,
                control_plane: true,
            },
        ),
    ]
}

#[test]
fn stress_campaigns_are_byte_identical_for_any_shard_and_thread_count() {
    for (family, stress) in stress_families() {
        let scenario = scenario(stress);
        let golden = golden(&scenario);
        // Shard counts spanning degenerate, coprime-with-n_bs, and
        // over-sharded; thread counts 1/2/4/8 (the determinism
        // satellite's full roster, distributed across shard counts).
        for (shards, threads) in [(1u32, 1usize), (3, 2), (4, 4), (32, 8)] {
            let name = format!("{family}-k{shards}-t{threads}");
            let dir = workdir(&name);
            let config = CampaignConfig {
                scenario: scenario.clone(),
                shards,
                threads,
                out: dir.join("store.mtdstore"),
                dir,
                kill_after: None,
                refit_window: None,
            };
            run(&config).unwrap_or_else(|e| panic!("{name}: {e}"));
            let bytes = std::fs::read(&config.out).unwrap();
            assert_eq!(
                bytes, golden,
                "store bytes diverged from the monolithic golden at {name}"
            );
            std::fs::remove_dir_all(&config.dir).ok();
        }
    }
}

#[test]
fn control_plane_campaign_assembles_a_v2_store_with_the_plane() {
    let scenario = scenario(StressConfig {
        control_plane: true,
        ..StressConfig::default()
    });
    let dir = workdir("v2-plane");
    let config = CampaignConfig {
        scenario: scenario.clone(),
        shards: 3,
        threads: 1,
        out: dir.join("store.mtdstore"),
        dir,
        kill_after: None,
        refit_window: None,
    };
    run(&config).unwrap();
    let bytes = std::fs::read(&config.out).unwrap();
    assert_eq!(u32::from_le_bytes(bytes[8..12].try_into().unwrap()), 2);
    let report = mtd_dataset::store::verify_bytes(&bytes);
    assert!(report.is_clean(), "{}", report.to_json());
    let ds = mtd_dataset::store::decode_binary(&bytes, 1).unwrap();
    let plane = ds
        .signaling()
        .expect("control-plane campaign has the plane");
    let (attach, handover, paging) = plane.totals();
    assert!(attach > 0, "no attach events recorded");
    assert!(paging > 0, "no paging events recorded");
    // Every session pages then attaches exactly once; handovers only
    // happen for mobile UEs crossing cells.
    assert_eq!(attach, paging);
    assert!(handover <= attach * 4, "implausible handover volume");
    std::fs::remove_dir_all(&config.dir).ok();
}
