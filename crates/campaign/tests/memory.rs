//! Peak-memory regression gate for the out-of-core campaign path.
//!
//! Runs a campaign at 10× the invariance battery's toy scale under the
//! counting global allocator and pins an upper bound on peak live heap
//! bytes. The bound (with its headroom) is echoed as `alloc_gate_bytes`
//! in `BENCH_scale.json`; if a change makes assembly or the shard sinks
//! materialize whole-campaign state again, this fails long before the
//! paper-scale bench would.
//!
//! This file holds exactly one test: the allocator peak is a
//! process-global high-water mark, so no other allocations may share
//! the binary.

use mtd_campaign::{run, CampaignConfig};
use mtd_netsim::ScenarioConfig;

#[global_allocator]
static ALLOC: mtd_telemetry::alloc::CountingAlloc = mtd_telemetry::alloc::CountingAlloc::new();

/// Pinned gate: peak live heap for the 120-BS × 3-day campaign below.
/// Measured ≈ 38 MB on the reference container; the ~2.5× headroom
/// absorbs allocator and platform noise without masking a regression to
/// whole-campaign materialization (which is >10× away).
const PEAK_LIVE_BYTES_GATE: i64 = 96 * 1024 * 1024;

#[test]
fn campaign_peak_heap_stays_under_the_pinned_gate() {
    let scenario = ScenarioConfig {
        n_bs: 120,
        days: 3,
        arrival_scale: 0.05,
        ..ScenarioConfig::small_test()
    };
    let dir = std::env::temp_dir().join("mtd_campaign_memory");
    std::fs::remove_dir_all(&dir).ok();
    let config = CampaignConfig {
        scenario,
        shards: 12,
        threads: 1,
        out: dir.join("store.mtdstore"),
        dir,
        kill_after: None,
        refit_window: None,
    };
    let report = run(&config).expect("campaign completes");
    assert!(report.store_bytes > 0);

    let stats = mtd_telemetry::alloc::stats();
    assert!(stats.installed, "counting allocator must be active");
    eprintln!(
        "campaign peak live heap: {} bytes (gate {})",
        stats.peak_live_bytes, PEAK_LIVE_BYTES_GATE
    );
    assert!(
        stats.peak_live_bytes < PEAK_LIVE_BYTES_GATE,
        "campaign peak heap {} exceeds the pinned gate {} — the \
         out-of-core path is materializing too much at once",
        stats.peak_live_bytes,
        PEAK_LIVE_BYTES_GATE
    );
    std::fs::remove_dir_all(&config.dir).ok();
}
