//! Per-shard spill files: the durable form of a pass-2
//! [`ShardAccumulator`](mtd_dataset::ShardAccumulator).
//!
//! Everything is stored in the fixed-point integer domain — dequantizing
//! happens exactly once, at store assembly — so a spill round-trip is
//! lossless by construction and the assembled store cannot drift from a
//! monolithic build.
//!
//! Layout (all little-endian, built on `mtd_dataset::format`):
//!
//! ```text
//! magic "MTDSPILL" | version u32 (1 without signaling, 2 with)
//! header block:  u32 len | vbins, dbins, row_len, n_cells, n_rows (u32 each)
//!                          + n_sig_rows u32            (v2 only)
//! cells block:   u32 len | n_cells × cell record (sparse vectors)
//! n_rows ×       u32 len | bs u32, sparse counts, sparse vol_q   (bs ascending)
//! n_sig_rows ×   u32 len | bs u32, sparse attach, sparse handover,
//!                          sparse paging                (v2 only, bs ascending)
//! crc32 of all preceding bytes
//! ```
//!
//! Shards without a signaling plane keep writing byte-identical v1
//! images; the version only advances for data that v1 readers could not
//! represent.
//!
//! Rows are individually length-prefixed and sorted by BS id so the
//! assembler can stream a spill through [`SpillCursor`] — one row
//! resident per open spill — instead of materializing the whole shard.
//! Cells are one block: their count is bounded by realized BS *groups*
//! (services × groups × days), independent of shard size.

use crate::manifest::{get_i128, put_i128};
use crate::{CampaignError, Fnv64};
use mtd_dataset::accum::{ExactCell, MinuteRowQ, ShardAccumulator, SignalRowQ};
use mtd_dataset::dataset::CellKey;
use mtd_dataset::format::{crc32, ByteReader, ByteWriter, Crc32, FormatError, FormatResult};
use std::collections::BTreeMap;
use std::io::Read;
use std::path::Path;

/// Spill file magic.
pub const MAGIC: [u8; 8] = *b"MTDSPILL";
/// Spill format version for shards without a signaling plane.
pub const VERSION: u32 = 1;
/// Spill format version for shards carrying signaling rows.
pub const SIGNALING_VERSION: u32 = 2;

/// Encodes a shard accumulator into a complete spill file image
/// (including the trailing CRC). Accumulators with signaling enabled
/// encode as v2; everything else stays byte-identical v1.
#[must_use]
pub fn encode(acc: &ShardAccumulator, vbins: usize, dbins: usize) -> Vec<u8> {
    let version = if acc.signaling.is_some() {
        SIGNALING_VERSION
    } else {
        VERSION
    };
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&version.to_le_bytes());

    let mut header = ByteWriter::new();
    header.put_u32(vbins as u32);
    header.put_u32(dbins as u32);
    header.put_u32(acc.row_len() as u32);
    header.put_u32(acc.cells.len() as u32);
    header.put_u32(acc.minutes.len() as u32);
    if let Some(sig) = &acc.signaling {
        header.put_u32(sig.len() as u32);
    }
    put_block(&mut out, header.into_bytes());

    let mut cells = ByteWriter::new();
    for (key, cell) in &acc.cells {
        put_cell(&mut cells, key, cell);
    }
    put_block(&mut out, cells.into_bytes());

    for (bs, row) in &acc.minutes {
        let mut w = ByteWriter::new();
        w.put_u32(*bs);
        put_sparse_u32(&mut w, &row.counts);
        put_sparse_i64(&mut w, &row.vol_q);
        put_block(&mut out, w.into_bytes());
    }

    if let Some(sig) = &acc.signaling {
        for (bs, row) in sig {
            let mut w = ByteWriter::new();
            w.put_u32(*bs);
            put_sparse_u32(&mut w, &row.attach);
            put_sparse_u32(&mut w, &row.handover);
            put_sparse_u32(&mut w, &row.paging);
            put_block(&mut out, w.into_bytes());
        }
    }

    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

fn put_block(out: &mut Vec<u8>, payload: Vec<u8>) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
}

fn put_cell(w: &mut ByteWriter, key: &CellKey, cell: &ExactCell) {
    let (service, group, day) = *key;
    w.put_u16(service);
    w.put_u16(group);
    w.put_u32(day);
    w.put_u64(cell.sessions);
    put_i128(w, cell.traffic_q);
    w.put_u64(cell.hist_total);
    put_sparse_u64(w, &cell.hist_counts);
    put_sparse_i128(w, &cell.pair_vol_q);
    put_sparse_u64(w, &cell.pair_counts);
    put_sparse_i128(w, &cell.pair_log_q);
    put_sparse_i128(w, &cell.pair_log_sq_q);
}

fn get_cell(r: &mut ByteReader, vbins: usize, dbins: usize) -> FormatResult<(CellKey, ExactCell)> {
    let service = r.get_u16()?;
    let group = r.get_u16()?;
    let day = r.get_u32()?;
    let mut cell = ExactCell::new(vbins, dbins);
    cell.sessions = r.get_u64()?;
    cell.traffic_q = get_i128(r)?;
    cell.hist_total = r.get_u64()?;
    get_sparse_u64(r, &mut cell.hist_counts)?;
    get_sparse_i128(r, &mut cell.pair_vol_q)?;
    get_sparse_u64(r, &mut cell.pair_counts)?;
    get_sparse_i128(r, &mut cell.pair_log_q)?;
    get_sparse_i128(r, &mut cell.pair_log_sq_q)?;
    Ok(((service, group, day), cell))
}

// Sparse vector codecs: nnz count, then (index, value) pairs in index
// order. Spill vectors (histogram bins, minute rows at realistic
// arrival scales) are mostly zero, and "always sparse" keeps the
// encoding deterministic.

fn put_sparse_u32(w: &mut ByteWriter, v: &[u32]) {
    w.put_u32(v.iter().filter(|x| **x != 0).count() as u32);
    for (i, x) in v.iter().enumerate() {
        if *x != 0 {
            w.put_u32(i as u32);
            w.put_u32(*x);
        }
    }
}

fn put_sparse_u64(w: &mut ByteWriter, v: &[u64]) {
    w.put_u32(v.iter().filter(|x| **x != 0).count() as u32);
    for (i, x) in v.iter().enumerate() {
        if *x != 0 {
            w.put_u32(i as u32);
            w.put_u64(*x);
        }
    }
}

fn put_sparse_i64(w: &mut ByteWriter, v: &[i64]) {
    w.put_u32(v.iter().filter(|x| **x != 0).count() as u32);
    for (i, x) in v.iter().enumerate() {
        if *x != 0 {
            w.put_u32(i as u32);
            w.put_u64(*x as u64);
        }
    }
}

fn put_sparse_i128(w: &mut ByteWriter, v: &[i128]) {
    w.put_u32(v.iter().filter(|x| **x != 0).count() as u32);
    for (i, x) in v.iter().enumerate() {
        if *x != 0 {
            w.put_u32(i as u32);
            put_i128(w, *x);
        }
    }
}

fn sparse_index(r: &mut ByteReader, len: usize) -> FormatResult<usize> {
    let i = r.get_u32()? as usize;
    if i >= len {
        return Err(FormatError("sparse index out of range"));
    }
    Ok(i)
}

fn get_sparse_u32(r: &mut ByteReader, out: &mut [u32]) -> FormatResult<()> {
    let nnz = r.get_u32()?;
    for _ in 0..nnz {
        let i = sparse_index(r, out.len())?;
        out[i] = r.get_u32()?;
    }
    Ok(())
}

fn get_sparse_u64(r: &mut ByteReader, out: &mut [u64]) -> FormatResult<()> {
    let nnz = r.get_u32()?;
    for _ in 0..nnz {
        let i = sparse_index(r, out.len())?;
        out[i] = r.get_u64()?;
    }
    Ok(())
}

fn get_sparse_i64(r: &mut ByteReader, out: &mut [i64]) -> FormatResult<()> {
    let nnz = r.get_u32()?;
    for _ in 0..nnz {
        let i = sparse_index(r, out.len())?;
        out[i] = r.get_u64()? as i64;
    }
    Ok(())
}

fn get_sparse_i128(r: &mut ByteReader, out: &mut [i128]) -> FormatResult<()> {
    let nnz = r.get_u32()?;
    for _ in 0..nnz {
        let i = sparse_index(r, out.len())?;
        out[i] = get_i128(r)?;
    }
    Ok(())
}

/// Streams a spill file once end to end, returning its FNV-1a digest
/// after verifying the trailing CRC. Constant memory; used to check a
/// spill against the manifest before trusting it.
pub fn verify(path: &Path, shard: u32) -> Result<u64, CampaignError> {
    let corrupt = |reason: String| CampaignError::SpillCorrupt { shard, reason };
    let file = std::fs::File::open(path).map_err(|e| {
        if e.kind() == std::io::ErrorKind::NotFound {
            CampaignError::SpillMissing {
                shard,
                path: path.to_path_buf(),
            }
        } else {
            CampaignError::Store(mtd_dataset::StoreError::Io {
                path: path.to_path_buf(),
                source: e,
            })
        }
    })?;
    let mut reader = std::io::BufReader::new(file);
    let mut fnv = Fnv64::new();
    let mut crc = Crc32::new();
    // Keep a 4-byte lag so the trailing CRC is excluded from the body CRC.
    let mut tail: Vec<u8> = Vec::new();
    let mut buf = [0u8; 64 * 1024];
    loop {
        let n = reader
            .read(&mut buf)
            .map_err(|e| corrupt(format!("read failed: {e}")))?;
        if n == 0 {
            break;
        }
        fnv.update(&buf[..n]);
        tail.extend_from_slice(&buf[..n]);
        if tail.len() > 4 {
            let body = tail.len() - 4;
            crc.update(&tail[..body]);
            tail.drain(..body);
        }
    }
    if tail.len() < 4 {
        return Err(corrupt("file shorter than its CRC trailer".to_string()));
    }
    let stored = u32::from_le_bytes(tail[..4].try_into().expect("4 bytes"));
    if crc.finish() != stored {
        return Err(corrupt("CRC mismatch".to_string()));
    }
    Ok(fnv.finish())
}

/// Decoded spill header.
#[derive(Debug, Clone, Copy)]
pub struct SpillHeader {
    /// Volume-histogram bins per cell.
    pub vbins: usize,
    /// Duration bins per cell.
    pub dbins: usize,
    /// Minute-row length (`n_days × 1440`).
    pub row_len: usize,
    /// Cell count.
    pub n_cells: usize,
    /// Minute-row count.
    pub n_rows: usize,
    /// Signaling-row count (always 0 in v1 spills).
    pub n_sig_rows: usize,
}

/// A sequential reader over one spill file: decodes the cells block
/// eagerly (group-bounded) and then yields minute rows one at a time in
/// ascending BS order — the memory contract the out-of-core assembler
/// relies on. Run [`verify`] first; the cursor itself does not
/// re-checksum.
pub struct SpillCursor {
    reader: std::io::BufReader<std::fs::File>,
    shard: u32,
    header: SpillHeader,
    rows_read: usize,
    last_bs: Option<u32>,
    /// Next row, pre-read so callers can order cursors by `peek_bs`.
    buffered: Option<(u32, MinuteRowQ)>,
    sig_rows_read: usize,
    last_sig_bs: Option<u32>,
    /// Next signaling row; only filled once the minute rows are drained
    /// (signaling blocks sit after the minute rows in the file).
    buffered_sig: Option<(u32, SignalRowQ)>,
}

impl SpillCursor {
    /// Opens a spill, decodes header and cells, and pre-reads the first
    /// minute row.
    pub fn open(
        path: &Path,
        shard: u32,
    ) -> Result<(SpillCursor, BTreeMap<CellKey, ExactCell>), CampaignError> {
        let corrupt = |reason: String| CampaignError::SpillCorrupt { shard, reason };
        let file = std::fs::File::open(path).map_err(|e| {
            CampaignError::Store(mtd_dataset::StoreError::Io {
                path: path.to_path_buf(),
                source: e,
            })
        })?;
        let mut reader = std::io::BufReader::new(file);

        let mut magic = [0u8; 12];
        read_exact(&mut reader, &mut magic, shard)?;
        if magic[..8] != MAGIC {
            return Err(corrupt("bad magic".to_string()));
        }
        let version = u32::from_le_bytes(magic[8..12].try_into().expect("4 bytes"));
        if version != VERSION && version != SIGNALING_VERSION {
            return Err(corrupt(format!("unsupported version {version}")));
        }

        let header_block = read_block(&mut reader, shard)?;
        let mut r = ByteReader::new(&header_block);
        let header = (|| -> FormatResult<SpillHeader> {
            let header = SpillHeader {
                vbins: r.get_u32()? as usize,
                dbins: r.get_u32()? as usize,
                row_len: r.get_u32()? as usize,
                n_cells: r.get_u32()? as usize,
                n_rows: r.get_u32()? as usize,
                n_sig_rows: if version == SIGNALING_VERSION {
                    r.get_u32()? as usize
                } else {
                    0
                },
            };
            if !r.is_exhausted() {
                return Err(FormatError("trailing bytes in spill header"));
            }
            Ok(header)
        })()
        .map_err(|e| corrupt(e.to_string()))?;

        let cells_block = read_block(&mut reader, shard)?;
        let mut r = ByteReader::new(&cells_block);
        let mut cells = BTreeMap::new();
        for _ in 0..header.n_cells {
            let (key, cell) =
                get_cell(&mut r, header.vbins, header.dbins).map_err(|e| corrupt(e.to_string()))?;
            cells.insert(key, cell);
        }
        if !r.is_exhausted() {
            return Err(corrupt("trailing bytes in cells block".to_string()));
        }

        let mut cursor = SpillCursor {
            reader,
            shard,
            header,
            rows_read: 0,
            last_bs: None,
            buffered: None,
            sig_rows_read: 0,
            last_sig_bs: None,
            buffered_sig: None,
        };
        cursor.fill()?;
        Ok((cursor, cells))
    }

    /// The spill's header.
    #[must_use]
    pub fn header(&self) -> SpillHeader {
        self.header
    }

    /// BS id of the next row, if any.
    #[must_use]
    pub fn peek_bs(&self) -> Option<u32> {
        self.buffered.as_ref().map(|(bs, _)| *bs)
    }

    /// Takes the next row (ascending BS order).
    pub fn next_row(&mut self) -> Result<Option<(u32, MinuteRowQ)>, CampaignError> {
        let row = self.buffered.take();
        if row.is_some() {
            self.fill()?;
        }
        Ok(row)
    }

    fn fill(&mut self) -> Result<(), CampaignError> {
        if self.rows_read >= self.header.n_rows {
            return Ok(());
        }
        let corrupt = |shard: u32, reason: String| CampaignError::SpillCorrupt { shard, reason };
        let block = read_block(&mut self.reader, self.shard)?;
        let mut r = ByteReader::new(&block);
        let row = (|| -> FormatResult<(u32, MinuteRowQ)> {
            let bs = r.get_u32()?;
            let mut row = MinuteRowQ {
                counts: vec![0; self.header.row_len],
                vol_q: vec![0; self.header.row_len],
            };
            get_sparse_u32(&mut r, &mut row.counts)?;
            get_sparse_i64(&mut r, &mut row.vol_q)?;
            Ok((bs, row))
        })()
        .map_err(|e| corrupt(self.shard, e.to_string()))?;
        if let Some(prev) = self.last_bs {
            if row.0 <= prev {
                return Err(corrupt(self.shard, "rows out of order".to_string()));
            }
        }
        self.last_bs = Some(row.0);
        self.rows_read += 1;
        self.buffered = Some(row);
        Ok(())
    }

    /// BS id of the next signaling row, if any. Only valid once the
    /// minute rows are drained.
    pub fn peek_signaling_bs(&mut self) -> Result<Option<u32>, CampaignError> {
        self.fill_sig()?;
        Ok(self.buffered_sig.as_ref().map(|(bs, _)| *bs))
    }

    /// Takes the next signaling row (ascending BS order).
    pub fn next_signaling_row(&mut self) -> Result<Option<(u32, SignalRowQ)>, CampaignError> {
        self.fill_sig()?;
        Ok(self.buffered_sig.take())
    }

    fn fill_sig(&mut self) -> Result<(), CampaignError> {
        if self.buffered_sig.is_some() || self.sig_rows_read >= self.header.n_sig_rows {
            return Ok(());
        }
        debug_assert!(
            self.buffered.is_none() && self.rows_read >= self.header.n_rows,
            "signaling rows requested before the minute rows were drained"
        );
        let corrupt = |shard: u32, reason: String| CampaignError::SpillCorrupt { shard, reason };
        let block = read_block(&mut self.reader, self.shard)?;
        let mut r = ByteReader::new(&block);
        let row = (|| -> FormatResult<(u32, SignalRowQ)> {
            let bs = r.get_u32()?;
            let mut row = SignalRowQ {
                attach: vec![0; self.header.row_len],
                handover: vec![0; self.header.row_len],
                paging: vec![0; self.header.row_len],
            };
            get_sparse_u32(&mut r, &mut row.attach)?;
            get_sparse_u32(&mut r, &mut row.handover)?;
            get_sparse_u32(&mut r, &mut row.paging)?;
            Ok((bs, row))
        })()
        .map_err(|e| corrupt(self.shard, e.to_string()))?;
        if let Some(prev) = self.last_sig_bs {
            if row.0 <= prev {
                return Err(corrupt(
                    self.shard,
                    "signaling rows out of order".to_string(),
                ));
            }
        }
        self.last_sig_bs = Some(row.0);
        self.sig_rows_read += 1;
        self.buffered_sig = Some(row);
        Ok(())
    }
}

fn read_exact(reader: &mut impl Read, buf: &mut [u8], shard: u32) -> Result<(), CampaignError> {
    reader
        .read_exact(buf)
        .map_err(|e| CampaignError::SpillCorrupt {
            shard,
            reason: format!("truncated: {e}"),
        })
}

fn read_block(reader: &mut impl Read, shard: u32) -> Result<Vec<u8>, CampaignError> {
    let mut len = [0u8; 4];
    read_exact(reader, &mut len, shard)?;
    let len = u32::from_le_bytes(len) as usize;
    if len > 256 << 20 {
        return Err(CampaignError::SpillCorrupt {
            shard,
            reason: format!("implausible block length {len}"),
        });
    }
    let mut block = vec![0u8; len];
    read_exact(reader, &mut block, shard)?;
    Ok(block)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtd_dataset::record::{duration_grid, volume_grid};
    use mtd_math::histogram::LogGrid;
    use mtd_netsim::ids::{BsId, Rat, ServiceId, SessionId};
    use mtd_netsim::session::SessionObservation;
    use mtd_netsim::time::SimTime;

    fn grids() -> (LogGrid, LogGrid) {
        (volume_grid(), duration_grid())
    }

    fn sample_acc() -> ShardAccumulator {
        let (vg, dg) = grids();
        let mut acc = ShardAccumulator::new(vg, dg, vec![0, 1, 0, 1, 2], 2);
        let mut state = 99u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1);
            state >> 33
        };
        for _ in 0..400 {
            let obs = SessionObservation {
                session: SessionId(1),
                bs: BsId((next() % 5) as u32),
                rat: Rat::Lte,
                service: ServiceId((next() % 4) as u16),
                start: SimTime::new((next() % 2) as u32, (next() % 86_400) as f64),
                duration_s: 1.0 + (next() % 3000) as f64,
                volume_mb: 10f64.powf((next() % 5000) as f64 / 1000.0 - 2.0),
                transient: false,
                segment_index: 0,
            };
            acc.record(&obs);
        }
        acc
    }

    fn write_spill(acc: &ShardAccumulator) -> (std::path::PathBuf, Vec<u8>) {
        let (vg, dg) = grids();
        let bytes = encode(acc, vg.bins(), dg.bins());
        let dir = std::env::temp_dir().join("mtd_campaign_spill_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("s{}.mtdspill", crate::fnv64(&bytes)));
        std::fs::write(&path, &bytes).unwrap();
        (path, bytes)
    }

    #[test]
    fn roundtrip_is_lossless() {
        let acc = sample_acc();
        let (path, bytes) = write_spill(&acc);
        // Signaling-free shards must keep emitting v1 images.
        assert_eq!(
            u32::from_le_bytes(bytes[8..12].try_into().unwrap()),
            VERSION
        );

        let digest = verify(&path, 0).unwrap();
        assert_eq!(digest, crate::fnv64(&bytes));

        let (mut cursor, cells) = SpillCursor::open(&path, 0).unwrap();
        assert_eq!(cells, acc.cells);
        let mut minutes = BTreeMap::new();
        while let Some((bs, row)) = cursor.next_row().unwrap() {
            minutes.insert(bs, row);
        }
        assert_eq!(minutes, acc.minutes);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn signaling_spills_as_v2_and_roundtrips() {
        use mtd_netsim::ids::UeId;
        use mtd_netsim::probes::{SignalingEvent, SignalingKind};

        let mut acc = sample_acc();
        acc.enable_signaling();
        let mut state = 7u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1);
            state >> 33
        };
        for _ in 0..300 {
            let bs = BsId((next() % 5) as u32);
            let kind = match next() % 3 {
                0 => SignalingKind::Attach(bs),
                1 => SignalingKind::Handover(bs),
                _ => SignalingKind::Paging(bs),
            };
            let ev = SignalingEvent {
                ue: UeId(1),
                time: SimTime::new((next() % 2) as u32, (next() % 86_400) as f64),
                kind,
            };
            acc.record_signaling(&ev);
        }

        let (path, bytes) = write_spill(&acc);
        assert_eq!(
            u32::from_le_bytes(bytes[8..12].try_into().unwrap()),
            SIGNALING_VERSION
        );
        verify(&path, 0).unwrap();

        let (mut cursor, cells) = SpillCursor::open(&path, 0).unwrap();
        assert_eq!(cells, acc.cells);
        let mut minutes = BTreeMap::new();
        while let Some((bs, row)) = cursor.next_row().unwrap() {
            minutes.insert(bs, row);
        }
        assert_eq!(minutes, acc.minutes);
        let mut sig = BTreeMap::new();
        while let Some((bs, row)) = cursor.next_signaling_row().unwrap() {
            sig.insert(bs, row);
        }
        assert_eq!(Some(sig), acc.signaling);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corruption_is_detected() {
        let acc = sample_acc();
        let (path, bytes) = write_spill(&acc);

        // Flip one byte mid-file: CRC fails.
        let mut bad = bytes.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x10;
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            verify(&path, 3),
            Err(CampaignError::SpillCorrupt { shard: 3, .. })
        ));

        // Truncation fails too.
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        assert!(matches!(
            verify(&path, 3),
            Err(CampaignError::SpillCorrupt { .. })
        ));

        std::fs::remove_file(&path).ok();
        assert!(matches!(
            verify(&path, 3),
            Err(CampaignError::SpillMissing { shard: 3, .. })
        ));
    }
}
