//! Campaign checkpoint manifest.
//!
//! The manifest is the single source of truth for resume: which shards
//! of each pass are complete, the running pass-1 totals, and a digest
//! for every durable artifact. It is written atomically (through
//! [`mtd_dataset::store::write_atomic`], so it inherits the injected
//! write faults) on every shard boundary and carries a trailing CRC32 —
//! a torn write is detected wholesale and reported as
//! [`CampaignError::TornManifest`], never half-parsed.
//!
//! The scenario configuration is echoed bit-exactly (f64 fields as raw
//! bits) so a resume with a drifted configuration is a structured
//! [`CampaignError::ConfigMismatch`] instead of a silently different
//! campaign. Deciles and group tables are *not* stored: they are cheap,
//! deterministic functions of the totals and are recomputed on every
//! resume.

use crate::CampaignError;
use mtd_dataset::format::{crc32, ByteReader, ByteWriter, FormatResult};
use mtd_netsim::ScenarioConfig;
use std::path::Path;

/// Manifest file magic.
pub const MAGIC: [u8; 8] = *b"MTDMANIF";
/// Manifest format version. v2 added the stress-scenario echo
/// (burst/drift/control-plane fields); v1 manifests predate stress
/// scenarios and are rejected as unsupported rather than silently
/// assumed quiescent.
pub const VERSION: u32 = 2;

/// Durable campaign progress. See the module docs for the contract.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Bit-exact echo of the scenario this campaign runs.
    pub scenario: ScenarioConfig,
    /// Shard count `K`; checkpoints are numbered `0..2K` (pass 1 shard
    /// `s` → `s`, pass 2 shard `s` → `K + s`).
    pub shards: u32,
    /// Running pass-1 quantized per-BS volume totals over the completed
    /// prefix of shards (associative integer sums, so the prefix is
    /// exact, not approximate).
    pub totals_q: Vec<i128>,
    /// Pass-1 shards completed (shards run in order, so this is a prefix
    /// count).
    pub pass1_done: u32,
    /// Digest of the totals after each completed pass-1 shard.
    pub pass1_digests: Vec<u64>,
    /// Pass-2 shards completed.
    pub pass2_done: u32,
    /// FNV-1a digest of each completed shard's spill file.
    pub spill_digests: Vec<u64>,
    /// Whether the final store has been assembled and renamed into place.
    pub assembled: bool,
}

impl Manifest {
    /// A fresh manifest for a campaign that has completed nothing.
    #[must_use]
    pub fn new(scenario: ScenarioConfig, shards: u32) -> Manifest {
        let n_bs = scenario.n_bs;
        Manifest {
            scenario,
            shards,
            totals_q: vec![0; n_bs],
            pass1_done: 0,
            pass1_digests: Vec::new(),
            pass2_done: 0,
            spill_digests: Vec::new(),
            assembled: false,
        }
    }

    /// Encodes the manifest: magic, version, payload, trailing CRC32 of
    /// everything preceding it.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        put_scenario(&mut w, &self.scenario);
        w.put_u32(self.shards);
        w.put_u32(self.totals_q.len() as u32);
        for q in &self.totals_q {
            put_i128(&mut w, *q);
        }
        w.put_u32(self.pass1_done);
        w.put_u32(self.pass1_digests.len() as u32);
        for d in &self.pass1_digests {
            w.put_u64(*d);
        }
        w.put_u32(self.pass2_done);
        w.put_u32(self.spill_digests.len() as u32);
        for d in &self.spill_digests {
            w.put_u64(*d);
        }
        w.put_u8(u8::from(self.assembled));
        let payload = w.into_bytes();

        let mut out = Vec::with_capacity(16 + payload.len() + 4);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&payload);
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Decodes manifest bytes. CRC failures → [`CampaignError::TornManifest`];
    /// everything after a good CRC that still fails to parse →
    /// [`CampaignError::CorruptManifest`].
    pub fn decode(bytes: &[u8], path: &Path) -> Result<Manifest, CampaignError> {
        let torn = || CampaignError::TornManifest(path.to_path_buf());
        let corrupt = |reason: &str| CampaignError::CorruptManifest {
            path: path.to_path_buf(),
            reason: reason.to_string(),
        };
        if bytes.len() < MAGIC.len() + 4 + 4 {
            return Err(torn());
        }
        let (body, tail) = bytes.split_at(bytes.len() - 4);
        let stored_crc = u32::from_le_bytes(tail.try_into().expect("4-byte tail"));
        if crc32(body) != stored_crc {
            return Err(torn());
        }
        if body[..MAGIC.len()] != MAGIC {
            return Err(corrupt("bad magic"));
        }
        let version = u32::from_le_bytes(body[8..12].try_into().expect("4 bytes"));
        if version != VERSION {
            return Err(corrupt("unsupported version"));
        }
        parse_payload(&body[12..]).map_err(|e| corrupt(&e.to_string()))
    }

    /// Loads and decodes the manifest at `path`. A missing file is
    /// [`CampaignError::NotStarted`].
    pub fn load(path: &Path) -> Result<Manifest, CampaignError> {
        let bytes = std::fs::read(path).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                CampaignError::NotStarted(path.to_path_buf())
            } else {
                CampaignError::Store(mtd_dataset::StoreError::Io {
                    path: path.to_path_buf(),
                    source: e,
                })
            }
        })?;
        Manifest::decode(&bytes, path)
    }

    /// Atomically persists the manifest (temp file + rename; injected
    /// write faults apply, which is how the torn-manifest battery drives
    /// this path).
    pub fn save(&self, path: &Path) -> Result<(), CampaignError> {
        mtd_dataset::write_atomic(path, &self.encode())?;
        Ok(())
    }

    /// Total checkpoint count (`2K`).
    #[must_use]
    pub fn total_checkpoints(&self) -> u64 {
        2 * u64::from(self.shards)
    }

    /// Checkpoints completed so far (shards only; assembly is atomic).
    #[must_use]
    pub fn checkpoints_done(&self) -> u64 {
        u64::from(self.pass1_done) + u64::from(self.pass2_done)
    }

    /// Structured comparison against the configuration a resume was
    /// invoked with; `Some(reason)` when they differ.
    #[must_use]
    pub fn config_mismatch(&self, scenario: &ScenarioConfig, shards: u32) -> Option<String> {
        if self.shards != shards {
            return Some(format!(
                "manifest has {} shards, resume requested {shards}",
                self.shards
            ));
        }
        let a = scenario_bits(&self.scenario);
        let b = scenario_bits(scenario);
        if a != b {
            return Some("scenario configuration differs from the manifest echo".to_string());
        }
        None
    }
}

fn put_scenario(w: &mut ByteWriter, s: &ScenarioConfig) {
    w.put_u64(s.n_bs as u64);
    w.put_u32(s.days);
    w.put_u64(s.seed);
    for bits in scenario_f64_bits(s) {
        w.put_u64(bits);
    }
    w.put_u32(s.stress.drift_window_days);
    w.put_u8(u8::from(s.stress.control_plane));
    for bits in stress_f64_bits(s) {
        w.put_u64(bits);
    }
}

fn scenario_f64_bits(s: &ScenarioConfig) -> [u64; 6] {
    [
        s.arrival_scale.to_bits(),
        s.p_mobile.to_bits(),
        s.mean_dwell_s.to_bits(),
        s.mean_trip_s.to_bits(),
        s.classifier_error_rate.to_bits(),
        s.timeout_split_prob.to_bits(),
    ]
}

fn stress_f64_bits(s: &ScenarioConfig) -> [u64; 5] {
    [
        s.stress.burst_prob.to_bits(),
        s.stress.burst_tail_index.to_bits(),
        s.stress.burst_coupling.to_bits(),
        s.stress.drift_mu_per_window.to_bits(),
        s.stress.drift_sigma_per_window.to_bits(),
    ]
}

/// Everything that defines the campaign's output, as comparable bits.
#[allow(clippy::type_complexity)]
fn scenario_bits(s: &ScenarioConfig) -> (u64, u32, u64, [u64; 6], u32, bool, [u64; 5]) {
    (
        s.n_bs as u64,
        s.days,
        s.seed,
        scenario_f64_bits(s),
        s.stress.drift_window_days,
        s.stress.control_plane,
        stress_f64_bits(s),
    )
}

fn get_scenario(r: &mut ByteReader) -> FormatResult<ScenarioConfig> {
    let n_bs = r.get_u64()? as usize;
    let days = r.get_u32()?;
    let seed = r.get_u64()?;
    let arrival_scale = f64::from_bits(r.get_u64()?);
    let p_mobile = f64::from_bits(r.get_u64()?);
    let mean_dwell_s = f64::from_bits(r.get_u64()?);
    let mean_trip_s = f64::from_bits(r.get_u64()?);
    let classifier_error_rate = f64::from_bits(r.get_u64()?);
    let timeout_split_prob = f64::from_bits(r.get_u64()?);
    let drift_window_days = r.get_u32()?;
    let control_plane = r.get_u8()? != 0;
    let burst_prob = f64::from_bits(r.get_u64()?);
    let burst_tail_index = f64::from_bits(r.get_u64()?);
    let burst_coupling = f64::from_bits(r.get_u64()?);
    let drift_mu_per_window = f64::from_bits(r.get_u64()?);
    let drift_sigma_per_window = f64::from_bits(r.get_u64()?);
    Ok(ScenarioConfig {
        n_bs,
        days,
        seed,
        arrival_scale,
        p_mobile,
        mean_dwell_s,
        mean_trip_s,
        classifier_error_rate,
        timeout_split_prob,
        stress: mtd_netsim::StressConfig {
            burst_prob,
            burst_tail_index,
            burst_coupling,
            drift_mu_per_window,
            drift_sigma_per_window,
            drift_window_days,
            control_plane,
        },
    })
}

/// Writes an `i128` as two little-endian 64-bit halves (two's
/// complement, hi then lo).
pub(crate) fn put_i128(w: &mut ByteWriter, q: i128) {
    let u = q as u128;
    w.put_u64((u >> 64) as u64);
    w.put_u64(u as u64);
}

/// Reads an `i128` written by [`put_i128`].
pub(crate) fn get_i128(r: &mut ByteReader) -> FormatResult<i128> {
    let hi = r.get_u64()?;
    let lo = r.get_u64()?;
    Ok(((u128::from(hi) << 64) | u128::from(lo)) as i128)
}

fn parse_payload(payload: &[u8]) -> FormatResult<Manifest> {
    let mut r = ByteReader::new(payload);
    let scenario = get_scenario(&mut r)?;
    let shards = r.get_u32()?;
    let n = r.get_u32()? as usize;
    let mut totals_q = Vec::with_capacity(n);
    for _ in 0..n {
        totals_q.push(get_i128(&mut r)?);
    }
    let pass1_done = r.get_u32()?;
    let n1 = r.get_u32()? as usize;
    let mut pass1_digests = Vec::with_capacity(n1);
    for _ in 0..n1 {
        pass1_digests.push(r.get_u64()?);
    }
    let pass2_done = r.get_u32()?;
    let n2 = r.get_u32()? as usize;
    let mut spill_digests = Vec::with_capacity(n2);
    for _ in 0..n2 {
        spill_digests.push(r.get_u64()?);
    }
    let assembled = r.get_u8()? != 0;
    if !r.is_exhausted() {
        return Err(mtd_dataset::format::FormatError(
            "trailing bytes after manifest payload",
        ));
    }
    Ok(Manifest {
        scenario,
        shards,
        totals_q,
        pass1_done,
        pass1_digests,
        pass2_done,
        spill_digests,
        assembled,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        let scenario = ScenarioConfig {
            n_bs: 5,
            days: 2,
            ..ScenarioConfig::small_test()
        };
        let mut m = Manifest::new(scenario, 3);
        m.totals_q = vec![1, -2, i128::MAX / 3, i128::MIN / 5, 0];
        m.pass1_done = 2;
        m.pass1_digests = vec![0xdead_beef, 42];
        m.pass2_done = 1;
        m.spill_digests = vec![7];
        m
    }

    #[test]
    fn roundtrip_is_exact() {
        let m = sample();
        let bytes = m.encode();
        let back = Manifest::decode(&bytes, Path::new("x")).unwrap();
        assert_eq!(back, m);
        // Including negative/extreme i128 totals and the f64 bit echo.
        assert_eq!(back.scenario.seed, m.scenario.seed);
        assert_eq!(
            back.scenario.arrival_scale.to_bits(),
            m.scenario.arrival_scale.to_bits()
        );
    }

    #[test]
    fn torn_writes_are_detected_not_half_trusted() {
        let bytes = sample().encode();
        // Truncation at every prefix length: always Torn, never Ok and
        // never a panic.
        for cut in 0..bytes.len() {
            let r = Manifest::decode(&bytes[..cut], Path::new("x"));
            assert!(
                matches!(r, Err(CampaignError::TornManifest(_))),
                "cut={cut}: {r:?}"
            );
        }
        // A flipped byte anywhere breaks the CRC.
        for pos in [0, 9, bytes.len() / 2, bytes.len() - 1] {
            let mut flipped = bytes.clone();
            flipped[pos] ^= 0x40;
            let r = Manifest::decode(&flipped, Path::new("x"));
            assert!(
                matches!(r, Err(CampaignError::TornManifest(_))),
                "pos={pos}"
            );
        }
    }

    #[test]
    fn wrong_version_is_corrupt_not_torn() {
        let mut bytes = sample().encode();
        // Patch version and re-seal the CRC so only the version differs.
        bytes[8..12].copy_from_slice(&9u32.to_le_bytes());
        let n = bytes.len();
        let crc = crc32(&bytes[..n - 4]);
        bytes[n - 4..].copy_from_slice(&crc.to_le_bytes());
        let r = Manifest::decode(&bytes, Path::new("x"));
        assert!(
            matches!(r, Err(CampaignError::CorruptManifest { .. })),
            "{r:?}"
        );
    }

    #[test]
    fn config_mismatch_is_structured() {
        let m = sample();
        assert!(m.config_mismatch(&m.scenario, 3).is_none());
        assert!(m.config_mismatch(&m.scenario, 4).is_some());
        let mut drifted = m.scenario.clone();
        drifted.seed ^= 1;
        assert!(m.config_mismatch(&drifted, 3).is_some());
        // Stress fields are part of the campaign identity too: resuming
        // a quiescent campaign as a stressed one must be a structured
        // mismatch, not a silently different dataset.
        let mut stressed = m.scenario.clone();
        stressed.stress.burst_prob = 0.5;
        assert!(m.config_mismatch(&stressed, 3).is_some());
        let mut cp = m.scenario.clone();
        cp.stress.control_plane = true;
        assert!(m.config_mismatch(&cp, 3).is_some());
    }

    #[test]
    fn save_and_load_via_disk() {
        let dir = std::env::temp_dir().join("mtd_campaign_manifest_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.mtdmanif");
        let m = sample();
        m.save(&path).unwrap();
        assert_eq!(Manifest::load(&path).unwrap(), m);
        std::fs::remove_file(&path).ok();
        assert!(matches!(
            Manifest::load(&path),
            Err(CampaignError::NotStarted(_))
        ));
    }
}
