//! The sharded campaign runner: run / resume / status / assembly.
//!
//! A campaign is the same two-pass pipeline as
//! [`Dataset::build`](mtd_dataset::Dataset::build) — pass 1 measures
//! per-BS totals for decile assignment, pass 2 fills cells and minute
//! rows — except each pass walks the base stations shard by shard,
//! checkpointing the manifest after every shard. All accumulation is
//! fixed-point (`mtd_dataset::accum`), so the assembled store is
//! byte-identical to a monolithic build for any shard count, thread
//! count, or kill/resume history.
//!
//! Checkpoint numbering: pass 1 shard `s` completes checkpoint `s`,
//! pass 2 shard `s` completes checkpoint `K + s`. After each checkpoint
//! the runner consults the `campaign.shard.kill` fault site (and the
//! explicit `kill_after` knob) and aborts with
//! [`CampaignError::Killed`] — progress up to and including the
//! checkpoint is already durable, which is exactly what a crash at that
//! point would leave behind.

use crate::manifest::Manifest;
use crate::spill::{self, SpillCursor};
use crate::{fnv64, CampaignError, Fnv64};
use mtd_dataset::accum::{ExactCell, MinuteRowQ, ShardAccumulator, SignalRowQ, VolumeTotalsQ};
use mtd_dataset::chunk::SectionKind;
use mtd_dataset::dataset::{group_table, CellKey};
use mtd_dataset::decile::assign_deciles;
use mtd_dataset::record::CellStats;
use mtd_dataset::record::{duration_grid, volume_grid};
use mtd_dataset::store::{
    dataset_format_version, encode_cells_chunk, encode_deciles_fields, encode_meta_fields,
    encode_minutes_rows, encode_signaling_rows, StoreWriter, CELLS_PER_CHUNK,
    MINUTE_ROWS_PER_CHUNK,
};
use mtd_netsim::engine::Engine;
use mtd_netsim::geo::Topology;
use mtd_netsim::services::ServiceCatalog;
use mtd_netsim::ScenarioConfig;
use std::collections::BTreeMap;
use std::io::Read;
use std::path::{Path, PathBuf};

/// Manifest file name inside the campaign directory.
pub const MANIFEST_FILE: &str = "campaign.mtdmanif";

/// Everything a campaign invocation needs.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// The simulated scenario (shared with the monolithic pipeline).
    pub scenario: ScenarioConfig,
    /// Shard count `K` (clamped to `1..=n_bs` at run time).
    pub shards: u32,
    /// Worker threads per shard simulation.
    pub threads: usize,
    /// Working directory for the manifest and spill files.
    pub dir: PathBuf,
    /// Output path for the assembled binary store.
    pub out: PathBuf,
    /// Deterministic kill switch: abort with [`CampaignError::Killed`]
    /// right after this checkpoint becomes durable. The CI smoke job and
    /// the CLI use this; the test battery uses the fault site.
    pub kill_after: Option<u64>,
    /// Windowed re-fitting period in days (`--refit-window`). Consumed
    /// by the CLI layer after the store is assembled — it never changes
    /// the campaign's bytes, so it is deliberately NOT part of the
    /// manifest's config-identity echo.
    pub refit_window: Option<u32>,
}

impl CampaignConfig {
    /// The manifest path for this campaign.
    #[must_use]
    pub fn manifest_path(&self) -> PathBuf {
        self.dir.join(MANIFEST_FILE)
    }

    /// The spill path for pass-2 shard `s`.
    #[must_use]
    pub fn spill_path(&self, s: u32) -> PathBuf {
        self.dir.join(format!("shard-{s:05}.mtdspill"))
    }

    /// The shard count actually used: `shards` clamped to `1..=n_bs`.
    #[must_use]
    pub fn effective_shards(&self) -> u32 {
        (self.shards.max(1) as usize).min(self.scenario.n_bs.max(1)) as u32
    }
}

/// Result of a completed campaign.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Where the assembled store landed.
    pub store_path: PathBuf,
    /// Assembled store size in bytes.
    pub store_bytes: u64,
    /// FNV-1a digest of the assembled store file.
    pub store_digest: u64,
    /// Shard count used.
    pub shards: u32,
    /// Base stations simulated.
    pub n_bs: usize,
    /// Days simulated.
    pub days: u32,
}

impl CampaignReport {
    /// BS-minutes covered by the campaign (the bench throughput unit).
    #[must_use]
    pub fn bs_minutes(&self) -> u64 {
        self.n_bs as u64 * u64::from(self.days) * 1440
    }
}

/// Campaign progress snapshot (from the manifest alone; no simulation).
#[derive(Debug, Clone)]
pub struct CampaignStatus {
    /// Shard count `K`.
    pub shards: u32,
    /// Pass-1 shards done.
    pub pass1_done: u32,
    /// Pass-2 shards done.
    pub pass2_done: u32,
    /// Whether the store has been assembled.
    pub assembled: bool,
    /// Base stations in the scenario.
    pub n_bs: usize,
    /// Days in the scenario.
    pub days: u32,
}

impl std::fmt::Display for CampaignStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "pass1 {}/{} pass2 {}/{} assembled={} ({} BS x {} days)",
            self.pass1_done,
            self.shards,
            self.pass2_done,
            self.shards,
            self.assembled,
            self.n_bs,
            self.days
        )
    }
}

/// The contiguous BS range `[first, first+len)` of shard `s` of `k`.
/// Ranges tile `0..n_bs` exactly and differ in size by at most one.
#[must_use]
pub fn shard_range(n_bs: usize, k: u32, s: u32) -> (usize, usize) {
    assert!(s < k, "shard {s} out of {k}");
    let k = k as usize;
    let s = s as usize;
    let first = n_bs * s / k;
    let end = n_bs * (s + 1) / k;
    (first, end - first)
}

/// Starts a fresh campaign. Fails with
/// [`CampaignError::AlreadyStarted`] when the directory already has a
/// manifest — resume instead, or clear the directory.
pub fn run(config: &CampaignConfig) -> Result<CampaignReport, CampaignError> {
    std::fs::create_dir_all(&config.dir).map_err(|e| {
        CampaignError::Store(mtd_dataset::StoreError::Io {
            path: config.dir.clone(),
            source: e,
        })
    })?;
    let manifest_path = config.manifest_path();
    if manifest_path.exists() {
        return Err(CampaignError::AlreadyStarted(manifest_path));
    }
    let manifest = Manifest::new(config.scenario.clone(), config.effective_shards());
    advance(config, manifest)
}

/// Resumes a previously started campaign from its manifest. The
/// configuration must match the manifest's bit-exact echo, and every
/// spill the manifest claims complete must verify against its digest.
pub fn resume(config: &CampaignConfig) -> Result<CampaignReport, CampaignError> {
    let mut manifest = Manifest::load(&config.manifest_path())?;
    if let Some(reason) = manifest.config_mismatch(&config.scenario, config.effective_shards()) {
        return Err(CampaignError::ConfigMismatch { reason });
    }
    // Never trust durable state blindly: re-verify completed pass-2
    // spills before building on them. One special case first: a
    // zero-length spill means the process died between creating the
    // file and writing it (the manifest update races the same window),
    // so treat that shard — and everything after it — as not done and
    // let `advance` re-simulate it deterministically, instead of
    // refusing forever or assembling an empty shard.
    for s in 0..manifest.pass2_done {
        let path = config.spill_path(s);
        if std::fs::metadata(&path).map(|m| m.len()).ok() == Some(0) {
            manifest.pass2_done = s;
            manifest.spill_digests.truncate(s as usize);
            break;
        }
        let digest = spill::verify(&path, s)?;
        if digest != manifest.spill_digests[s as usize] {
            return Err(CampaignError::SpillCorrupt {
                shard: s,
                reason: "digest differs from manifest".to_string(),
            });
        }
    }
    advance(config, manifest)
}

/// Reads campaign progress from the manifest in `dir`.
pub fn status(dir: &Path) -> Result<CampaignStatus, CampaignError> {
    let manifest = Manifest::load(&dir.join(MANIFEST_FILE))?;
    Ok(CampaignStatus {
        shards: manifest.shards,
        pass1_done: manifest.pass1_done,
        pass2_done: manifest.pass2_done,
        assembled: manifest.assembled,
        n_bs: manifest.scenario.n_bs,
        days: manifest.scenario.days,
    })
}

/// Digest of the totals prefix — recorded per pass-1 checkpoint.
fn totals_digest(totals_q: &[i128]) -> u64 {
    let mut h = Fnv64::new();
    for q in totals_q {
        h.update(&(*q as u128).to_le_bytes());
    }
    h.finish()
}

fn publish_progress(manifest: &Manifest) {
    mtd_telemetry::gauge_set("campaign.shards_total", manifest.total_checkpoints() as f64);
    mtd_telemetry::gauge_set("campaign.shards_done", manifest.checkpoints_done() as f64);
}

/// After-checkpoint kill gate: the fault site first, then the explicit
/// `kill_after` knob. Called only once the checkpoint is durable.
fn kill_gate(config: &CampaignConfig, checkpoint: u64) -> Result<(), CampaignError> {
    if mtd_fault::campaign_kill_checkpoint(checkpoint) || config.kill_after == Some(checkpoint) {
        return Err(CampaignError::Killed { checkpoint });
    }
    Ok(())
}

/// Drives the campaign from wherever the manifest says it is to a
/// finished store.
fn advance(
    config: &CampaignConfig,
    mut manifest: Manifest,
) -> Result<CampaignReport, CampaignError> {
    let _span = mtd_telemetry::span!("campaign.advance");
    let scenario = &manifest.scenario;
    let topology = Topology::generate(scenario.n_bs, scenario.seed);
    let catalog = ServiceCatalog::paper();
    let engine = Engine::new(scenario, &topology, &catalog);
    let k = manifest.shards;
    let n_bs = scenario.n_bs;
    publish_progress(&manifest);

    // Pass 1: per-BS totals, shard by shard.
    while manifest.pass1_done < k {
        let s = manifest.pass1_done;
        let _span = mtd_telemetry::span!("campaign.pass1_shard");
        let (first, len) = shard_range(n_bs, k, s);
        let mut sink = VolumeTotalsQ::new(n_bs);
        engine.run_shard(&mut sink, first, len, config.threads);
        for (acc, delta) in manifest.totals_q.iter_mut().zip(&sink.totals_q) {
            *acc += delta;
        }
        manifest.pass1_done = s + 1;
        manifest
            .pass1_digests
            .push(totals_digest(&manifest.totals_q));
        manifest.save(&config.manifest_path())?;
        publish_progress(&manifest);
        mtd_telemetry::count("campaign.shards.completed", 1);
        kill_gate(config, u64::from(s))?;
    }

    // Deciles and groups are deterministic functions of the totals —
    // recomputed on every resume rather than persisted.
    let totals_mb: Vec<f64> = {
        let t = VolumeTotalsQ {
            totals_q: manifest.totals_q.clone(),
        };
        t.totals_mb()
    };
    let decile_of_bs = assign_deciles(&totals_mb);
    let (groups, group_of_bs) = group_table(topology.stations(), &decile_of_bs);

    // Pass 2: cells + minute rows, spilled per shard.
    let (vg, dg) = (volume_grid(), duration_grid());
    while manifest.pass2_done < k {
        let s = manifest.pass2_done;
        let _span = mtd_telemetry::span!("campaign.pass2_shard");
        let (first, len) = shard_range(n_bs, k, s);
        let mut sink = ShardAccumulator::new(vg, dg, group_of_bs.clone(), scenario.days);
        if scenario.stress.control_plane {
            sink.enable_signaling();
        }
        engine.run_shard(&mut sink, first, len, config.threads);
        let bytes = spill::encode(&sink, vg.bins(), dg.bins());
        mtd_dataset::write_atomic(&config.spill_path(s), &bytes)?;
        manifest.pass2_done = s + 1;
        manifest.spill_digests.push(fnv64(&bytes));
        manifest.save(&config.manifest_path())?;
        publish_progress(&manifest);
        mtd_telemetry::count("campaign.shards.completed", 1);
        kill_gate(config, u64::from(k) + u64::from(s))?;
    }

    // Assembly: merge spills out of core into the final store.
    if !manifest.assembled {
        assemble(
            config,
            &manifest,
            &decile_of_bs,
            &totals_mb,
            &groups,
            &group_of_bs,
            catalog
                .services()
                .iter()
                .map(|svc| svc.name.clone())
                .collect(),
        )?;
        manifest.assembled = true;
        manifest.save(&config.manifest_path())?;
    }

    let (store_bytes, store_digest) = digest_file(&config.out)?;
    Ok(CampaignReport {
        store_path: config.out.clone(),
        store_bytes,
        store_digest,
        shards: k,
        n_bs,
        days: scenario.days,
    })
}

/// Streams the K verified spills into the final MTDSTORE file.
///
/// Memory contract: the merged cell map is bounded by realized groups
/// (not stations); minute rows flow through one 64-row block plus one
/// buffered row per open spill cursor.
#[allow(clippy::too_many_arguments)]
fn assemble(
    config: &CampaignConfig,
    manifest: &Manifest,
    decile_of_bs: &[u8],
    totals_mb: &[f64],
    groups: &[mtd_dataset::GroupKey],
    group_of_bs: &[u16],
    service_names: Vec<String>,
) -> Result<(), CampaignError> {
    let _span = mtd_telemetry::span!("campaign.assemble");
    let k = manifest.shards;
    let scenario = &manifest.scenario;
    let n_bs = scenario.n_bs;
    let (vg, dg) = (volume_grid(), duration_grid());
    let row_len = (scenario.days * mtd_netsim::time::MINUTES_PER_DAY) as usize;

    // Verify every spill against the manifest, then open cursors.
    // Cells merge eagerly (group-bounded); minute rows stay on disk.
    let mut merged_cells: BTreeMap<CellKey, ExactCell> = BTreeMap::new();
    let mut cursors: Vec<SpillCursor> = Vec::with_capacity(k as usize);
    for s in 0..k {
        let path = config.spill_path(s);
        let digest = spill::verify(&path, s)?;
        if digest != manifest.spill_digests[s as usize] {
            return Err(CampaignError::SpillCorrupt {
                shard: s,
                reason: "digest differs from manifest".to_string(),
            });
        }
        let (cursor, cells) = SpillCursor::open(&path, s)?;
        for (key, cell) in cells {
            merged_cells
                .entry(key)
                .or_insert_with(|| ExactCell::new(vg.bins(), dg.bins()))
                .merge(&cell);
        }
        cursors.push(cursor);
    }
    mtd_telemetry::gauge_set("campaign.cells", merged_cells.len() as f64);

    // Finalize cells once; identical to Dataset::build's finalize. The
    // map is consumed so integer cells free as their float twins are
    // built — holding both full maps would double the assembly peak.
    let final_cells: BTreeMap<CellKey, CellStats> = merged_cells
        .into_iter()
        .map(|(key, cell)| (key, cell.to_cell_stats(&vg)))
        .collect();

    // Control-plane campaigns assemble a v2 store (extra Signaling
    // section); everything else keeps writing v1 bytes — same contract
    // as the monolithic `encode_binary`.
    let has_signaling = scenario.stress.control_plane;
    let mut writer =
        StoreWriter::create_versioned(&config.out, dataset_format_version(has_signaling))?;
    writer.append(
        SectionKind::Meta,
        &encode_meta_fields(&vg, &dg, scenario.days, &service_names, groups, group_of_bs),
    )?;
    writer.append(
        SectionKind::Deciles,
        &encode_deciles_fields(decile_of_bs, totals_mb),
    )?;
    let records: Vec<(&CellKey, &CellStats)> = final_cells.iter().collect();
    for batch in records.chunks(CELLS_PER_CHUNK) {
        writer.append(
            SectionKind::Cells,
            &encode_cells_chunk(batch, vg.bins(), dg.bins()),
        )?;
    }

    // Minute blocks: merge-join the sorted cursors over each 64-BS
    // block, summing cross-shard contributions (handover fragments land
    // on neighbor BSs outside their own shard).
    let mut first = 0usize;
    while first < n_bs {
        let rows_in_block = MINUTE_ROWS_PER_CHUNK.min(n_bs - first);
        let mut block: Vec<Option<MinuteRowQ>> = vec![None; rows_in_block];
        for cursor in &mut cursors {
            while let Some(bs) = cursor.peek_bs() {
                let bs = bs as usize;
                if bs >= first + rows_in_block {
                    break;
                }
                if bs < first {
                    return Err(CampaignError::SpillCorrupt {
                        shard: 0,
                        reason: format!("row for BS {bs} seen after block {first}"),
                    });
                }
                let (_, row) = cursor.next_row()?.expect("peeked row present");
                match &mut block[bs - first] {
                    Some(acc) => acc.merge(&row),
                    slot => *slot = Some(row),
                }
            }
        }
        let dense: Vec<(Vec<u32>, Vec<f32>)> = block
            .into_iter()
            .map(|slot| match slot {
                Some(row) => row.to_row(),
                None => (vec![0u32; row_len], vec![0.0f32; row_len]),
            })
            .collect();
        let refs: Vec<(&[u32], &[f32])> = dense
            .iter()
            .map(|(c, v)| (c.as_slice(), v.as_slice()))
            .collect();
        writer.append(
            SectionKind::Minutes,
            &encode_minutes_rows(first as u32, row_len, &refs),
        )?;
        first += rows_in_block;
    }

    for cursor in &cursors {
        if cursor.peek_bs().is_some() {
            return Err(CampaignError::SpillCorrupt {
                shard: 0,
                reason: "spill rows beyond the scenario's BS range".to_string(),
            });
        }
    }

    // Signaling blocks: the same merge-join over the v2 spill tail.
    // Runs only for control-plane campaigns; quiescent spills are v1
    // and report zero signaling rows.
    if has_signaling {
        let mut first = 0usize;
        while first < n_bs {
            let rows_in_block = MINUTE_ROWS_PER_CHUNK.min(n_bs - first);
            let mut block: Vec<Option<SignalRowQ>> = vec![None; rows_in_block];
            for cursor in &mut cursors {
                while let Some(bs) = cursor.peek_signaling_bs()? {
                    let bs = bs as usize;
                    if bs >= first + rows_in_block {
                        break;
                    }
                    if bs < first {
                        return Err(CampaignError::SpillCorrupt {
                            shard: 0,
                            reason: format!("signaling row for BS {bs} seen after block {first}"),
                        });
                    }
                    let (_, row) = cursor.next_signaling_row()?.expect("peeked row present");
                    match &mut block[bs - first] {
                        Some(acc) => acc.merge(&row),
                        slot => *slot = Some(row),
                    }
                }
            }
            let zero = vec![0u32; row_len];
            let dense: Vec<SignalRowQ> = block
                .into_iter()
                .map(|slot| {
                    slot.unwrap_or_else(|| SignalRowQ {
                        attach: zero.clone(),
                        handover: zero.clone(),
                        paging: zero.clone(),
                    })
                })
                .collect();
            let refs: Vec<(&[u32], &[u32], &[u32])> = dense
                .iter()
                .map(|r| {
                    (
                        r.attach.as_slice(),
                        r.handover.as_slice(),
                        r.paging.as_slice(),
                    )
                })
                .collect();
            writer.append(
                SectionKind::Signaling,
                &encode_signaling_rows(first as u32, row_len, &refs),
            )?;
            first += rows_in_block;
        }
        for cursor in &mut cursors {
            if cursor.peek_signaling_bs()?.is_some() {
                return Err(CampaignError::SpillCorrupt {
                    shard: 0,
                    reason: "signaling rows beyond the scenario's BS range".to_string(),
                });
            }
        }
    }

    let bytes = writer.finish()?;
    mtd_telemetry::gauge_set("store.encode.bytes", bytes as f64);
    Ok(())
}

/// Streams a file once, returning `(len, fnv64 digest)`.
fn digest_file(path: &Path) -> Result<(u64, u64), CampaignError> {
    let file = std::fs::File::open(path).map_err(|e| {
        CampaignError::Store(mtd_dataset::StoreError::Io {
            path: path.to_path_buf(),
            source: e,
        })
    })?;
    let mut reader = std::io::BufReader::new(file);
    let mut fnv = Fnv64::new();
    let mut len = 0u64;
    let mut buf = [0u8; 64 * 1024];
    loop {
        let n = reader.read(&mut buf).map_err(|e| {
            CampaignError::Store(mtd_dataset::StoreError::Io {
                path: path.to_path_buf(),
                source: e,
            })
        })?;
        if n == 0 {
            break;
        }
        fnv.update(&buf[..n]);
        len += n as u64;
    }
    Ok((len, fnv.finish()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_ranges_tile_exactly() {
        for n_bs in [1usize, 5, 12, 97, 1000] {
            for k in [1u32, 2, 3, 7, 32] {
                let k = (k as usize).min(n_bs) as u32;
                let mut next = 0usize;
                for s in 0..k {
                    let (first, len) = shard_range(n_bs, k, s);
                    assert_eq!(first, next, "n_bs={n_bs} k={k} s={s}");
                    assert!(len >= n_bs / k as usize, "n_bs={n_bs} k={k} s={s}");
                    assert!(len <= n_bs / k as usize + 1, "n_bs={n_bs} k={k} s={s}");
                    next = first + len;
                }
                assert_eq!(next, n_bs, "n_bs={n_bs} k={k}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn shard_range_rejects_overflow_index() {
        let _ = shard_range(10, 3, 3);
    }
}
