//! # mtd-campaign — paper-scale sharded campaign runner
//!
//! The paper's measurements cover tens of thousands of base stations over
//! months; a monolithic [`Dataset::build`](mtd_dataset::Dataset::build)
//! holds every per-BS minute row in memory at once, which caps campaign
//! size at whatever fits in RAM. This crate partitions the base stations
//! of one scenario into `K` contiguous shards, simulates each shard
//! through the same engine and the same fixed-point accumulation pipeline
//! (`mtd_dataset::accum`), spills per-shard partials to disk, and
//! assembles the final MTDSTORE file out of core through
//! [`StoreWriter`](mtd_dataset::StoreWriter).
//!
//! Two invariants define correctness, both proven by the test battery in
//! `tests/`:
//!
//! 1. **Shard invariance** — for any shard count and thread count, the
//!    assembled store is *byte-identical* to
//!    `encode_binary(Dataset::build(..), 1)`. This holds by construction:
//!    all real-valued statistics are accumulated as fixed-point integers
//!    (associative), and both paths finalize and encode through the same
//!    code.
//! 2. **Resume invariance** — a campaign killed after any shard (or mid
//!    manifest write) and resumed produces the same bytes as an
//!    uninterrupted run. Progress is checkpointed in a CRC-tailed
//!    manifest written atomically on every shard boundary; a torn
//!    manifest is *detected*, never half-trusted.
//!
//! Peak memory is sublinear in campaign size: a shard holds only its own
//! minute rows (plus the handover fringe), merged cells are bounded by
//! the number of realized BS groups (not stations), and assembly streams
//! spill files through `K` sequential cursors into 64-row store chunks.

pub mod manifest;
pub mod runner;
pub mod spill;

pub use manifest::Manifest;
pub use runner::{
    resume, run, shard_range, status, CampaignConfig, CampaignReport, CampaignStatus,
};

use std::path::PathBuf;

/// FNV-1a 64-bit streaming hasher — the campaign's cheap content digest
/// for spill files and assembled stores (not cryptographic; corruption
/// beyond it is caught by the store/manifest CRCs).
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Fnv64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher.
    #[must_use]
    pub fn new() -> Fnv64 {
        Fnv64(Self::OFFSET)
    }

    /// Feeds bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for b in bytes {
            h ^= u64::from(*b);
            h = h.wrapping_mul(Self::PRIME);
        }
        self.0 = h;
    }

    /// The digest so far.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot FNV-1a 64 digest.
#[must_use]
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.update(bytes);
    h.finish()
}

/// Campaign failure modes. Every variant is structured — a caller (or
/// the resume battery) can distinguish a deliberate kill from a torn
/// manifest from a corrupt spill.
#[derive(Debug)]
pub enum CampaignError {
    /// Filesystem or store-layer failure.
    Store(mtd_dataset::StoreError),
    /// `run` on a directory that already has a manifest (resume instead).
    AlreadyStarted(PathBuf),
    /// `resume`/`status` on a directory with no manifest.
    NotStarted(PathBuf),
    /// Manifest file failed its trailing CRC — a write was torn
    /// mid-flight. The file is rejected wholesale, never half-parsed.
    TornManifest(PathBuf),
    /// Manifest passed its CRC but its payload does not parse — format
    /// drift or deliberate corruption.
    CorruptManifest { path: PathBuf, reason: String },
    /// Resume with a scenario/shard configuration differing from the one
    /// the manifest records.
    ConfigMismatch { reason: String },
    /// A spill file recorded as complete is missing on resume/assembly.
    SpillMissing { shard: u32, path: PathBuf },
    /// A spill file exists but fails its digest or decode.
    SpillCorrupt { shard: u32, reason: String },
    /// The run was deliberately killed at a shard checkpoint (injected
    /// fault or `kill_after`); progress up to the checkpoint is durable.
    Killed { checkpoint: u64 },
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::Store(e) => write!(f, "store error: {e}"),
            CampaignError::AlreadyStarted(p) => {
                write!(
                    f,
                    "campaign already started in {} (use resume)",
                    p.display()
                )
            }
            CampaignError::NotStarted(p) => {
                write!(f, "no campaign manifest in {}", p.display())
            }
            CampaignError::TornManifest(p) => {
                write!(f, "manifest {} failed CRC (torn write)", p.display())
            }
            CampaignError::CorruptManifest { path, reason } => {
                write!(f, "manifest {} corrupt: {reason}", path.display())
            }
            CampaignError::ConfigMismatch { reason } => {
                write!(f, "resume configuration mismatch: {reason}")
            }
            CampaignError::SpillMissing { shard, path } => {
                write!(f, "spill for shard {shard} missing: {}", path.display())
            }
            CampaignError::SpillCorrupt { shard, reason } => {
                write!(f, "spill for shard {shard} corrupt: {reason}")
            }
            CampaignError::Killed { checkpoint } => {
                write!(f, "killed at checkpoint {checkpoint}")
            }
        }
    }
}

impl std::error::Error for CampaignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CampaignError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<mtd_dataset::StoreError> for CampaignError {
    fn from(e: mtd_dataset::StoreError) -> CampaignError {
        CampaignError::Store(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv64_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn fnv64_streaming_equals_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut h = Fnv64::new();
        for chunk in data.chunks(7) {
            h.update(chunk);
        }
        assert_eq!(h.finish(), fnv64(data));
    }
}
