//! Golden-fixture test pinning the on-disk binary format (version 1).
//!
//! `fixtures/golden_v1.bin` was generated once (see the `#[ignore]`d
//! regeneration test) and is decoded — never rebuilt — here, so the test
//! is independent of the RNG that produced the dataset. It fails if the
//! decoder stops reading v1 files or the encoder stops producing these
//! exact bytes: both mean the on-disk format changed and
//! `FORMAT_VERSION` must be bumped.

use mtd_dataset::store::{encode_binary, verify_bytes};
use mtd_dataset::SliceFilter;
use std::fmt::Write as _;
use std::path::PathBuf;

const BUMP_MSG: &str = "on-disk binary format changed: readers of existing files will break. \
     Bump FORMAT_VERSION in crates/dataset/src/format.rs, keep a v1 decode path, and \
     regenerate fixtures with `cargo test -p mtd-dataset --test golden_format -- --ignored`";

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// A plain-text summary of everything the fixture must preserve: sizes,
/// structure, and the exact f64 bit patterns of the headline aggregates.
fn digest(bytes: &[u8], ds: &mtd_dataset::Dataset) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "file_len={}", bytes.len());
    let _ = writeln!(
        out,
        "file_crc32={:#010x}",
        mtd_dataset::format::crc32(bytes)
    );
    let _ = writeln!(out, "n_bs={}", ds.n_bs());
    let _ = writeln!(out, "n_services={}", ds.n_services());
    for bs in 0..ds.n_bs() {
        let _ = writeln!(
            out,
            "bs[{bs}] decile={} volume_bits={:#018x}",
            ds.decile_of_bs(bs),
            ds.bs_total_volume(bs).to_bits()
        );
    }
    let all = SliceFilter::all();
    for s in 0..ds.n_services() as u16 {
        let _ = writeln!(
            out,
            "service[{s}] sessions_bits={:#018x} traffic_bits={:#018x}",
            ds.sessions(s, &all).to_bits(),
            ds.traffic(s, &all).to_bits()
        );
    }
    out
}

#[test]
fn golden_v1_fixture_still_decodes_bit_exactly() {
    let bytes = std::fs::read(fixture_path("golden_v1.bin"))
        .expect("fixture missing: tests/fixtures/golden_v1.bin must be checked in");
    let expected = std::fs::read_to_string(fixture_path("golden_v1.digest.txt"))
        .expect("fixture missing: tests/fixtures/golden_v1.digest.txt must be checked in");

    let report = verify_bytes(&bytes);
    assert!(report.is_clean(), "{BUMP_MSG}\nverify report: {report:?}");

    let ds = mtd_dataset::store::decode_binary(&bytes, 1)
        .unwrap_or_else(|e| panic!("{BUMP_MSG}\ndecode failed: {e}"));

    let got = digest(&bytes, &ds);
    assert_eq!(got, expected, "{BUMP_MSG}");

    // The encoder must reproduce the fixture byte for byte; anything else
    // means files written by this build differ from v1 on disk.
    assert_eq!(encode_binary(&ds, 1), bytes, "{BUMP_MSG}");
}

/// Regenerates the fixture pair. Run manually after an intentional format
/// version bump: `cargo test -p mtd-dataset --test golden_format -- --ignored`
#[test]
#[ignore = "writes tests/fixtures; run only to regenerate after a format bump"]
fn regenerate_golden_fixture() {
    use mtd_netsim::geo::Topology;
    use mtd_netsim::services::ServiceCatalog;
    use mtd_netsim::ScenarioConfig;

    let config = ScenarioConfig {
        n_bs: 3,
        days: 1,
        arrival_scale: 0.02,
        ..ScenarioConfig::small_test()
    };
    let topology = Topology::generate(config.n_bs, config.seed);
    let ds = mtd_dataset::Dataset::build(&config, &topology, &ServiceCatalog::paper());
    let bytes = encode_binary(&ds, 1);

    std::fs::create_dir_all(fixture_path("")).unwrap();
    std::fs::write(fixture_path("golden_v1.bin"), &bytes).unwrap();
    std::fs::write(fixture_path("golden_v1.digest.txt"), digest(&bytes, &ds)).unwrap();
}
