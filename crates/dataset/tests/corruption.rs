//! Corruption battery for the mtd-store v2 binary format.
//!
//! The acceptance bar (ISSUE: "verify detects 100% of single-byte
//! corruptions") is enforced directly: every flipped byte in the header,
//! every frame header, the entire footer frame, and a dense stride across
//! all payloads must (a) make `verify_bytes` report unclean, (b) make the
//! strict decoder error, and (c) never panic the tolerant decoder.
//!
//! Why this is airtight rather than sampled luck: payload flips break the
//! per-chunk CRC32 (which detects any burst ≤ 32 bits); header and
//! frame-header flips break the whole-file CRC the footer pins; flips
//! inside the footer frame itself break its payload CRC, its kind tag,
//! its cross-checked index, or its length field.

use mtd_dataset::store::{
    decode_binary, decode_binary_tolerant, encode_binary, verify, verify_bytes,
};
use mtd_dataset::Dataset;
use mtd_netsim::geo::Topology;
use mtd_netsim::services::ServiceCatalog;
use mtd_netsim::ScenarioConfig;
use std::sync::OnceLock;

/// Header layout pinned by DESIGN.md §9: magic(8) + version(4) + flags(4).
const HEADER_LEN: usize = 16;

fn clean_image() -> &'static Vec<u8> {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let config = ScenarioConfig {
            n_bs: 3,
            days: 1,
            arrival_scale: 0.02,
            ..ScenarioConfig::small_test()
        };
        let topology = Topology::generate(config.n_bs, config.seed);
        let ds = Dataset::build(&config, &topology, &ServiceCatalog::paper());
        encode_binary(&ds, 1)
    })
}

/// Walks the frame structure and returns every byte offset belonging to a
/// frame header (kind + index + len + crc), plus the span of the final
/// (footer) frame. Re-derives the layout from the spec on purpose: if the
/// writer drifts from DESIGN.md §9 this walk breaks loudly.
fn frame_header_offsets(bytes: &[u8]) -> (Vec<usize>, std::ops::Range<usize>) {
    let mut offsets = Vec::new();
    let mut last_frame = 0..0;
    let mut pos = HEADER_LEN;
    while pos < bytes.len() {
        let len = u32::from_le_bytes(bytes[pos + 5..pos + 9].try_into().unwrap()) as usize;
        let end = pos + mtd_dataset::chunk::FRAME_HEADER_LEN + len;
        offsets.extend(pos..pos + mtd_dataset::chunk::FRAME_HEADER_LEN);
        last_frame = pos..end;
        pos = end;
    }
    assert_eq!(pos, bytes.len(), "frame walk must land exactly on EOF");
    (offsets, last_frame)
}

/// Every corruption the battery checks at one byte position.
fn assert_flip_detected(bytes: &[u8], pos: usize, mask: u8) {
    let mut bad = bytes.to_vec();
    bad[pos] ^= mask;

    let report = verify_bytes(&bad);
    assert!(
        !report.is_clean(),
        "flip of byte {pos} (mask {mask:#04x}) passed verify: {report:?}"
    );
    assert!(
        decode_binary(&bad, 1).is_err(),
        "strict decode accepted flip of byte {pos} (mask {mask:#04x})"
    );
    // Tolerant decode may fail or may recover — it must never panic, and
    // if it recovers the report must say the file was damaged.
    if let Ok((_, report)) = decode_binary_tolerant(&bad) {
        assert!(
            !report.is_clean(),
            "tolerant decode called flip of byte {pos} clean"
        );
    }
}

#[test]
fn every_header_and_frame_header_flip_is_detected() {
    let bytes = clean_image();
    let (header_offsets, footer_span) = frame_header_offsets(bytes);
    for pos in 0..HEADER_LEN {
        for mask in [0x01, 0x80, 0xFF] {
            assert_flip_detected(bytes, pos, mask);
        }
    }
    for pos in header_offsets {
        assert_flip_detected(bytes, pos, 0x01);
        assert_flip_detected(bytes, pos, 0xFF);
    }
    // The footer frame is the one region outside the whole-file CRC:
    // sweep every byte of it with every single-bit mask.
    for pos in footer_span {
        for bit in 0..8 {
            assert_flip_detected(bytes, pos, 1 << bit);
        }
    }
}

#[test]
fn payload_flips_are_detected_across_the_whole_file() {
    let bytes = clean_image();
    // Dense stride across every byte class (payloads included); co-prime
    // step so repeated runs of the battery cover different residues.
    let step = 7;
    for start in [0usize, 3] {
        let mut pos = start;
        while pos < bytes.len() {
            assert_flip_detected(bytes, pos, 0xFF);
            assert_flip_detected(bytes, pos, 0x10);
            pos += step;
        }
    }
}

/// A v2 image: the same scenario with the control-plane plane enabled,
/// so the file carries Signaling frames after the Minutes frames.
fn clean_image_v2() -> &'static Vec<u8> {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let config = ScenarioConfig {
            n_bs: 3,
            days: 1,
            arrival_scale: 0.02,
            stress: mtd_netsim::StressConfig {
                control_plane: true,
                ..mtd_netsim::StressConfig::default()
            },
            ..ScenarioConfig::small_test()
        };
        let topology = Topology::generate(config.n_bs, config.seed);
        let ds = Dataset::build(&config, &topology, &ServiceCatalog::paper());
        let bytes = encode_binary(&ds, 1);
        assert_eq!(
            u32::from_le_bytes(bytes[8..12].try_into().unwrap()),
            2,
            "signaling dataset must encode as format v2"
        );
        bytes
    })
}

#[test]
fn v2_clean_image_verifies_clean() {
    let report = verify_bytes(clean_image_v2());
    assert!(report.is_clean(), "{}", report.to_json());
    assert!(report.chunks.iter().any(|c| c.section == "signaling"));
}

#[test]
fn v2_header_frame_header_and_payload_flips_are_detected() {
    // The full battery, re-run over a v2 image: the new Signaling frames
    // must be exactly as tamper-evident as every v1 section.
    let bytes = clean_image_v2();
    let (header_offsets, footer_span) = frame_header_offsets(bytes);
    for pos in 0..HEADER_LEN {
        for mask in [0x01, 0x80, 0xFF] {
            assert_flip_detected(bytes, pos, mask);
        }
    }
    for pos in header_offsets {
        assert_flip_detected(bytes, pos, 0x01);
        assert_flip_detected(bytes, pos, 0xFF);
    }
    for pos in footer_span {
        for bit in 0..8 {
            assert_flip_detected(bytes, pos, 1 << bit);
        }
    }
    // Dense payload stride (covers the Signaling payload bytes too).
    let step = 7;
    for start in [0usize, 3] {
        let mut pos = start;
        while pos < bytes.len() {
            assert_flip_detected(bytes, pos, 0xFF);
            assert_flip_detected(bytes, pos, 0x10);
            pos += step;
        }
    }
}

#[test]
fn truncations_never_pass_and_never_panic() {
    let bytes = clean_image();
    let (_, footer_span) = frame_header_offsets(bytes);
    let mut cuts = vec![
        0,
        1,
        7,
        8,
        HEADER_LEN - 1,
        HEADER_LEN,
        HEADER_LEN + 1,
        HEADER_LEN + mtd_dataset::chunk::FRAME_HEADER_LEN,
        bytes.len() / 2,
        footer_span.start,
        footer_span.start + 1,
        bytes.len() - 1,
    ];
    cuts.dedup();
    for cut in cuts {
        let truncated = &bytes[..cut];
        let report = verify_bytes(truncated);
        assert!(
            !report.is_clean(),
            "truncation to {cut} bytes passed verify: {report:?}"
        );
        assert!(
            decode_binary(truncated, 1).is_err(),
            "strict decode accepted truncation to {cut} bytes"
        );
        if let Ok((_, report)) = decode_binary_tolerant(truncated) {
            assert!(!report.is_clean());
        }
    }
}

#[test]
fn junk_appended_after_footer_is_detected() {
    let mut bad = clean_image().clone();
    bad.extend_from_slice(&[0u8; 32]);
    assert!(!verify_bytes(&bad).is_clean());
    assert!(decode_binary(&bad, 1).is_err());
}

#[test]
fn empty_and_garbage_files_report_fatal_without_panicking() {
    let dir = std::env::temp_dir().join("mtd_dataset_corruption_test");
    std::fs::create_dir_all(&dir).unwrap();

    let empty = dir.join("empty.bin");
    std::fs::write(&empty, b"").unwrap();
    // Zero-length files can't even be format-detected; any structured
    // error is fine, a panic is not.
    if let Ok(report) = verify(&empty) {
        assert!(!report.is_clean());
    }

    let garbage = dir.join("garbage.bin");
    std::fs::write(&garbage, [0xA5u8; 64]).unwrap();
    if let Ok(report) = verify(&garbage) {
        assert!(!report.is_clean());
    }

    std::fs::remove_file(&empty).ok();
    std::fs::remove_file(&garbage).ok();
}
