//! Store-shim fault injection: every injected write/read fault must
//! surface as a structured [`StoreError`] (never a panic) and must never
//! leave a torn destination or a leaked temp file — except under the
//! explicit `store.write.skip_atomic` mutation site, whose whole purpose
//! is to tear files so the chaos harness can prove it notices.

use mtd_dataset::store::{self, StoreError};
use mtd_dataset::Dataset;
use mtd_fault::FaultPlan;
use mtd_netsim::geo::Topology;
use mtd_netsim::services::ServiceCatalog;
use mtd_netsim::ScenarioConfig;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// The fault runtime is process-global; every test serializes on this.
fn fault_lock() -> MutexGuard<'static, ()> {
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    GATE.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn small_dataset() -> &'static Dataset {
    static DS: OnceLock<Dataset> = OnceLock::new();
    DS.get_or_init(|| {
        let config = ScenarioConfig {
            n_bs: 4,
            days: 1,
            arrival_scale: 0.05,
            ..ScenarioConfig::small_test()
        };
        let topology = Topology::generate(config.n_bs, config.seed);
        let catalog = ServiceCatalog::paper();
        Dataset::build(&config, &topology, &catalog)
    })
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("mtd_dataset_fault_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(path.with_extension("tmp-partial")).ok();
    path
}

fn no_tmp_leak(path: &Path) {
    assert!(
        !path.with_extension("tmp-partial").exists(),
        "temp file leaked for {}",
        path.display()
    );
}

#[test]
fn write_failures_leave_no_destination_and_no_temp_file() {
    let _g = fault_lock();
    assert!(mtd_fault::compiled_in());
    let ds = small_dataset();
    for spec in [
        "store.write.short=1",
        "store.write.enospc=1",
        "store.write.rename=1",
    ] {
        let path = temp_path(&format!("wf-{}.mtd", spec.split('.').nth(2).unwrap()));
        mtd_fault::install(FaultPlan::parse(spec, 0xABCD).unwrap());
        let result = store::save_binary(ds, &path);
        mtd_fault::clear();
        assert!(
            matches!(result, Err(StoreError::Io { .. })),
            "{spec}: want structured Io error, got {result:?}"
        );
        assert!(!path.exists(), "{spec}: failed write must not create dest");
        no_tmp_leak(&path);
    }
}

#[test]
fn write_failure_preserves_previous_destination_content() {
    let _g = fault_lock();
    let ds = small_dataset();
    let path = temp_path("wf-preserve.mtd");
    store::save_binary(ds, &path).unwrap();
    let before = std::fs::read(&path).unwrap();

    mtd_fault::install(FaultPlan::parse("store.write.short=1", 7).unwrap());
    let result = store::save_binary(ds, &path);
    mtd_fault::clear();
    assert!(result.is_err());
    assert_eq!(
        std::fs::read(&path).unwrap(),
        before,
        "failed rewrite must leave the old bytes intact"
    );
    no_tmp_leak(&path);
    std::fs::remove_file(&path).ok();
}

#[test]
fn write_bitflip_is_always_caught_by_the_reader() {
    let _g = fault_lock();
    let ds = small_dataset();
    // p=1 flips one seeded bit per write; different seeds hit different
    // offsets (header, payload, CRC, footer) — every one must be caught.
    for seed in 0..16u64 {
        let path = temp_path(&format!("wf-flip-{seed}.mtd"));
        mtd_fault::install(FaultPlan::parse("store.write.bitflip=1", seed).unwrap());
        let saved = store::save_binary(ds, &path);
        mtd_fault::clear();
        saved.unwrap_or_else(|e| panic!("seed {seed}: flip write itself succeeds: {e}"));
        let strict = store::load_binary_with_threads(&path, 1);
        match strict {
            Err(_) => {}
            Ok(loaded) => {
                panic!(
                    "seed {seed}: corrupt file loaded silently (equal={})",
                    loaded == *ds
                );
            }
        }
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn skip_atomic_mutation_site_really_tears_the_destination() {
    let _g = fault_lock();
    let ds = small_dataset();
    let path = temp_path("wf-torn.mtd");
    mtd_fault::install(
        FaultPlan::parse("store.write.skip_atomic=1,store.write.short=1", 3).unwrap(),
    );
    let result = store::save_binary(ds, &path);
    mtd_fault::clear();
    assert!(result.is_err(), "short write still reports failure");
    // The invariant the atomic protocol normally guarantees is broken:
    // the destination exists and holds a torn prefix.
    assert!(path.exists(), "mutation must leave a torn destination");
    let torn = std::fs::read(&path).unwrap();
    let full = store::load_binary_with_threads(&path, 1);
    assert!(
        full.is_err(),
        "torn file ({} bytes) must not load strictly",
        torn.len()
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn read_corruption_surfaces_structured_errors_not_panics() {
    let _g = fault_lock();
    let ds = small_dataset();
    let path = temp_path("rf.mtd");
    store::save_binary(ds, &path).unwrap();
    for (spec, seeds) in [
        ("store.read.truncate=1", 0..12u64),
        ("store.read.bitflip=1", 0..12u64),
    ] {
        for seed in seeds {
            mtd_fault::install(FaultPlan::parse(spec, seed).unwrap());
            let strict = store::load_binary_with_threads(&path, 2);
            mtd_fault::clear();
            if let Ok(loaded) = strict {
                // A fault that truncated nothing (offset landed at EOF is
                // impossible: truncate < len) must never load different data.
                assert_eq!(loaded, *ds, "{spec} seed {seed}: silent divergence");
            }
        }
    }
    // The file on disk is untouched by read-side faults.
    assert_eq!(store::load_binary_with_threads(&path, 1).unwrap(), *ds);
    std::fs::remove_file(&path).ok();
}

#[test]
fn json_parse_fuzz_yields_malformed_json_errors() {
    let _g = fault_lock();
    let ds = small_dataset();
    let path = temp_path("fuzz.json");
    store::save_json(ds, &path).unwrap();
    let mut detected = 0;
    for seed in 0..12u64 {
        mtd_fault::install(FaultPlan::parse("json.parse.corrupt=1", seed).unwrap());
        let result = store::load_json(&path);
        mtd_fault::clear();
        match result {
            Err(StoreError::MalformedJson { detail, .. }) => {
                assert!(!detail.is_empty(), "seed {seed}: positioned message");
                detected += 1;
            }
            Err(other) => panic!("seed {seed}: unexpected error class {other:?}"),
            // A corruption the parser cannot distinguish from valid input
            // (e.g. truncation at byte 0 of a trailing pad) must still
            // round-trip identically or fail — never diverge.
            Ok(loaded) => assert_eq!(loaded, *ds, "seed {seed}: silent divergence"),
        }
    }
    assert!(
        detected >= 10,
        "p=1 corruption should be detected nearly always, got {detected}/12"
    );
    std::fs::remove_file(&path).ok();
}
