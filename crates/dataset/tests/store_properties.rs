//! Property tests for the mtd-store v2 binary format (DESIGN.md §9).
//!
//! The invariants that make the store trustworthy for heavy-tailed
//! traffic data: *any* dataset — seeded with arbitrary extra session
//! observations, extreme volumes included — survives encode → decode
//! with every f64 bit pattern intact, and the parallel encoder produces
//! bytes identical to the sequential one.

use mtd_dataset::store::{decode_binary, encode_binary};
use mtd_dataset::{Dataset, SliceFilter};
use mtd_netsim::geo::Topology;
use mtd_netsim::ids::{BsId, Rat, ServiceId, SessionId};
use mtd_netsim::services::ServiceCatalog;
use mtd_netsim::session::SessionObservation;
use mtd_netsim::time::SimTime;
use mtd_netsim::ScenarioConfig;
use proptest::prelude::*;
use std::sync::OnceLock;

const N_BS: u32 = 4;
const DAYS: u32 = 2;

/// One shared base dataset; each property case layers arbitrary extra
/// observations on a clone (building is the expensive part).
fn base() -> &'static Dataset {
    static DS: OnceLock<Dataset> = OnceLock::new();
    DS.get_or_init(|| {
        let config = ScenarioConfig {
            n_bs: N_BS as usize,
            days: DAYS,
            arrival_scale: 0.02,
            ..ScenarioConfig::small_test()
        };
        let topology = Topology::generate(config.n_bs, config.seed);
        Dataset::build(&config, &topology, &ServiceCatalog::paper())
    })
}

/// (bs, service, day, second-of-day, log10 volume, duration s).
type ObsTuple = (u32, u16, u32, f64, f64, f64);

fn with_observations(obs: &[ObsTuple]) -> Dataset {
    let mut ds = base().clone();
    for (i, &(bs, service, day, second, log_volume, duration_s)) in obs.iter().enumerate() {
        ds.record_observation(&SessionObservation {
            session: SessionId(i as u64),
            bs: BsId(bs),
            rat: if bs % 2 == 0 { Rat::Lte } else { Rat::Nr },
            service: ServiceId(service),
            start: SimTime::new(day, second),
            duration_s,
            volume_mb: 10f64.powf(log_volume),
            transient: false,
            segment_index: 0,
        });
    }
    ds
}

fn obs_strategy() -> impl Strategy<Value = Vec<ObsTuple>> {
    proptest::collection::vec(
        (
            0..N_BS,
            0u16..31,
            0..DAYS,
            0.0..86_399.0f64,
            // Volumes from 0.1 kB to 100 GB — both grid ends overflow.
            -4.0..5.0f64,
            0.2..200_000.0f64,
        ),
        0..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn binary_roundtrip_is_lossless(obs in obs_strategy()) {
        let ds = with_observations(&obs);
        let bytes = encode_binary(&ds, 1);
        let back = decode_binary(&bytes, 1).unwrap();

        // Structural equality (covers counts, grids, deciles, cells).
        prop_assert_eq!(&back, &ds);

        // f64 bit-pattern equality of the headline aggregates: value
        // equality would let -0.0/0.0 or rounding slips hide.
        let all = SliceFilter::all();
        for s in 0..ds.n_services() as u16 {
            prop_assert_eq!(
                back.sessions(s, &all).to_bits(),
                ds.sessions(s, &all).to_bits()
            );
            prop_assert_eq!(
                back.traffic(s, &all).to_bits(),
                ds.traffic(s, &all).to_bits()
            );
        }
        // Decile boundaries survive exactly.
        for bs in 0..ds.n_bs() {
            prop_assert_eq!(back.decile_of_bs(bs), ds.decile_of_bs(bs));
            prop_assert_eq!(
                back.bs_total_volume(bs).to_bits(),
                ds.bs_total_volume(bs).to_bits()
            );
        }

        // The decoded dataset re-encodes to the identical bytes — the
        // strongest whole-file bit-exactness statement available.
        prop_assert_eq!(encode_binary(&back, 1), bytes);
    }

    #[test]
    fn parallel_encode_is_byte_identical(obs in obs_strategy(), threads in 2usize..9) {
        let ds = with_observations(&obs);
        let sequential = encode_binary(&ds, 1);
        let parallel = encode_binary(&ds, threads);
        prop_assert_eq!(parallel, sequential);
    }

    #[test]
    fn parallel_decode_matches_sequential(obs in obs_strategy(), threads in 2usize..9) {
        let ds = with_observations(&obs);
        let bytes = encode_binary(&ds, 1);
        let seq = decode_binary(&bytes, 1).unwrap();
        let par = decode_binary(&bytes, threads).unwrap();
        prop_assert_eq!(&par, &seq);
        prop_assert_eq!(&par, &ds);
    }
}
