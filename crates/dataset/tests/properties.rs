//! Property-based tests for the dataset layer's aggregation invariants.

use mtd_dataset::{CellStats, Dataset, SliceFilter};
use mtd_netsim::geo::{Region, Topology};
use mtd_netsim::ids::Rat;
use mtd_netsim::services::ServiceCatalog;
use mtd_netsim::time::DayType;
use mtd_netsim::ScenarioConfig;
use proptest::prelude::*;
use std::sync::OnceLock;

/// One shared dataset for all properties (building is the expensive part).
fn shared() -> &'static (Dataset, ServiceCatalog) {
    static DS: OnceLock<(Dataset, ServiceCatalog)> = OnceLock::new();
    DS.get_or_init(|| {
        let config = ScenarioConfig {
            n_bs: 10,
            days: 7,
            arrival_scale: 0.05,
            ..ScenarioConfig::small_test()
        };
        let topology = Topology::generate(config.n_bs, config.seed);
        let catalog = ServiceCatalog::paper();
        (Dataset::build(&config, &topology, &catalog), catalog)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn day_type_slices_partition_everything(svc in 0u16..31) {
        let (ds, _) = shared();
        let all = ds.sessions(svc, &SliceFilter::all());
        let work = ds.sessions(svc, &SliceFilter::day(DayType::Workday));
        let wend = ds.sessions(svc, &SliceFilter::day(DayType::Weekend));
        prop_assert!((work + wend - all).abs() < 1e-9);
        let t_all = ds.traffic(svc, &SliceFilter::all());
        let t_w = ds.traffic(svc, &SliceFilter::day(DayType::Workday))
            + ds.traffic(svc, &SliceFilter::day(DayType::Weekend));
        prop_assert!((t_all - t_w).abs() < 1e-6 * t_all.max(1.0));
    }

    #[test]
    fn rat_slices_partition_everything(svc in 0u16..31) {
        let (ds, _) = shared();
        let all = ds.sessions(svc, &SliceFilter::all());
        let split = ds.sessions(svc, &SliceFilter::rat(Rat::Lte))
            + ds.sessions(svc, &SliceFilter::rat(Rat::Nr));
        prop_assert!((all - split).abs() < 1e-9);
    }

    #[test]
    fn region_slices_partition_everything(svc in 0u16..31) {
        let (ds, _) = shared();
        let all = ds.sessions(svc, &SliceFilter::all());
        let split: f64 = [Region::DenseUrban, Region::SemiUrban, Region::Rural]
            .iter()
            .map(|r| ds.sessions(svc, &SliceFilter::region(*r)))
            .sum();
        prop_assert!((all - split).abs() < 1e-9);
    }

    #[test]
    fn decile_slices_partition_everything(svc in 0u16..31) {
        let (ds, _) = shared();
        let all = ds.sessions(svc, &SliceFilter::all());
        let split: f64 =
            (0..10u8).map(|d| ds.sessions(svc, &SliceFilter::decile(d))).sum();
        prop_assert!((all - split).abs() < 1e-9);
    }

    #[test]
    fn volume_pdfs_are_normalized(svc in 0u16..31) {
        let (ds, _) = shared();
        if let Ok(pdf) = ds.volume_pdf(svc, &SliceFilter::all()) {
            let mass: f64 =
                pdf.density().iter().sum::<f64>() * pdf.grid().bin_width();
            prop_assert!((mass - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn pair_weights_sum_to_sessions(svc in 0u16..31) {
        let (ds, _) = shared();
        let pairs = ds.duration_pairs(svc, &SliceFilter::all());
        let weight: f64 = pairs.iter().map(|p| p.weight).sum();
        let sessions = ds.sessions(svc, &SliceFilter::all());
        prop_assert!((weight - sessions).abs() < 1e-9,
            "pair weight {weight} vs sessions {sessions}");
    }

    #[test]
    fn pair_dispersion_nonnegative_and_bounded(svc in 0u16..31) {
        let (ds, _) = shared();
        let disp = ds.pair_dispersion(svc, &SliceFilter::all());
        prop_assert!(disp >= 0.0);
        prop_assert!(disp < 3.0, "absurd dispersion {disp}");
    }

    #[test]
    fn cell_merge_is_commutative_in_totals(
        volumes_a in proptest::collection::vec(0.01f64..100.0, 1..30),
        volumes_b in proptest::collection::vec(0.01f64..100.0, 1..30)
    ) {
        let vg = mtd_dataset::record::volume_grid();
        let dg = mtd_dataset::record::duration_grid();
        let fill = |vols: &[f64]| {
            let mut c = CellStats::new(vg, dg.bins());
            for (i, v) in vols.iter().enumerate() {
                c.record(*v, 10.0 + i as f64, &dg);
            }
            c
        };
        let mut ab = fill(&volumes_a);
        ab.merge(&fill(&volumes_b)).unwrap();
        let mut ba = fill(&volumes_b);
        ba.merge(&fill(&volumes_a)).unwrap();
        prop_assert_eq!(ab.sessions, ba.sessions);
        prop_assert!((ab.traffic_mb - ba.traffic_mb).abs() < 1e-9);
        prop_assert_eq!(ab.volume_hist.total(), ba.volume_hist.total());
    }
}
