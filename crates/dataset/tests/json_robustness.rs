//! `dataset import --format json` robustness (DESIGN.md §11 satellite):
//! truncated, mutated or outright hostile input must come back as a
//! structured `StoreError` — never a panic, never an abort.
//!
//! Two layers:
//!
//! 1. a committed regression corpus under `tests/corpus/` — each file is
//!    a previously-interesting (or shrunk) hostile input that must keep
//!    failing *cleanly*,
//! 2. property tests that truncate and mutate a real serialized dataset
//!    at arbitrary points and assert the no-panic contract, with
//!    `Ok` ⇒ full-document round-trip equality for truncations.

use mtd_dataset::store::{load_json, save_json, StoreError};
use mtd_dataset::Dataset;
use mtd_netsim::geo::Topology;
use mtd_netsim::services::ServiceCatalog;
use mtd_netsim::ScenarioConfig;
use proptest::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

fn base() -> &'static Dataset {
    static DS: OnceLock<Dataset> = OnceLock::new();
    DS.get_or_init(|| {
        let config = ScenarioConfig {
            n_bs: 4,
            days: 1,
            arrival_scale: 0.02,
            ..ScenarioConfig::small_test()
        };
        let topology = Topology::generate(config.n_bs, config.seed);
        Dataset::build(&config, &topology, &ServiceCatalog::paper())
    })
}

/// The base dataset's JSON serialization, read back as raw bytes — the
/// substrate the property tests truncate and mutate.
fn base_json() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let path = scratch("base");
        save_json(base(), &path).expect("serialize base dataset");
        let bytes = std::fs::read(&path).expect("read back");
        std::fs::remove_file(&path).ok();
        bytes
    })
}

/// Unique scratch path (tests in this binary run in parallel).
fn scratch(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join("mtd_json_robustness");
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir.join(format!(
        "{tag}-{}-{}.json",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Writes `bytes` to a scratch file, runs `load_json`, cleans up, and
/// asserts the no-panic contract. Returns the structured result.
fn try_load(tag: &str, bytes: &[u8]) -> Result<Dataset, StoreError> {
    let path = scratch(tag);
    std::fs::write(&path, bytes).expect("write input");
    let result = catch_unwind(AssertUnwindSafe(|| load_json(&path)));
    std::fs::remove_file(&path).ok();
    match result {
        Ok(r) => r,
        Err(_) => panic!("load_json panicked on {} bytes ({tag})", bytes.len()),
    }
}

fn assert_structured(origin: &Path, err: &StoreError) {
    match err {
        StoreError::MalformedJson { path, detail } => {
            assert!(!detail.is_empty(), "{origin:?}: empty detail");
            assert!(path.exists() || path.to_str().is_some());
            // The Display form is what the CLI prints; it must carry the
            // diagnostic, not just a variant name.
            let shown = err.to_string();
            assert!(
                shown.contains(detail.as_str()),
                "{origin:?}: Display {shown:?} drops detail {detail:?}"
            );
        }
        other => panic!("{origin:?}: expected MalformedJson, got {other}"),
    }
}

#[test]
fn every_corpus_file_fails_with_a_structured_error() {
    let corpus = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut seen = 0;
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&corpus)
        .expect("tests/corpus must be committed")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e != "md"))
        .collect();
    entries.sort();
    for path in entries {
        let bytes = std::fs::read(&path).expect("read corpus file");
        let err = match try_load("corpus", &bytes) {
            Ok(_) => panic!("corpus file {path:?} unexpectedly parsed as a dataset"),
            Err(e) => e,
        };
        assert_structured(&path, &err);
        seen += 1;
    }
    assert!(
        seen >= 8,
        "corpus shrank to {seen} files — was a case lost?"
    );
}

#[test]
fn nesting_bomb_hits_the_depth_limit_not_the_stack() {
    // 100k open brackets: without the parser's depth limit this is a
    // stack overflow — an uncatchable abort, i.e. a contract violation.
    let bomb = vec![b'['; 100_000];
    let err = try_load("bomb", &bomb).expect_err("bomb must not parse");
    let shown = err.to_string();
    assert!(
        shown.contains("nesting deeper than"),
        "expected the depth-limit diagnostic, got: {shown}"
    );
}

#[test]
fn deeply_nested_but_legal_documents_still_parse() {
    // The limit must not reject the dataset schema itself (5 levels) or
    // reasonable depth: 32 nested arrays stay well inside the bound.
    let mut doc = String::new();
    for _ in 0..32 {
        doc.push('[');
    }
    doc.push('1');
    for _ in 0..32 {
        doc.push(']');
    }
    // Not a dataset, so it must fail *schema* validation — but with a
    // "dataset: expected object" style error, not the depth diagnostic.
    let err = try_load("legal-depth", doc.as_bytes()).expect_err("not a dataset");
    assert!(
        !err.to_string().contains("nesting deeper than"),
        "depth limit misfired on legal input: {err}"
    );
}

#[test]
fn full_document_round_trips() {
    let ds = try_load("full", base_json()).expect("full document must parse");
    assert_eq!(&ds, base());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Truncation sweep: any prefix of a valid document either parses to
    /// the original dataset (only possible at full length — the schema
    /// ends in `}`) or fails with a structured MalformedJson.
    #[test]
    fn truncated_documents_never_panic(frac in 0.0..1.0f64) {
        let full = base_json();
        let cut = ((full.len() as f64) * frac) as usize;
        match try_load("trunc", &full[..cut]) {
            Ok(ds) => {
                prop_assert_eq!(cut, full.len());
                prop_assert_eq!(&ds, base());
            }
            Err(err) => {
                prop_assert!(matches!(err, StoreError::MalformedJson { .. }),
                    "truncation at {} gave {}", cut, err);
            }
        }
    }

    /// Garbage sweep: flip one byte anywhere in the document. Most flips
    /// must fail structurally; benign flips (whitespace, a digit) may
    /// still parse — then the value must be a usable dataset that
    /// re-serializes without panicking.
    #[test]
    fn mutated_documents_never_panic(frac in 0.0..1.0f64, byte in 0u16..256) {
        let mut bytes = base_json().to_vec();
        let idx = ((bytes.len() as f64) * frac) as usize % bytes.len();
        bytes[idx] = byte as u8;
        if let Ok(ds) = try_load("mutate", &bytes) {
            let out = scratch("reserialize");
            save_json(&ds, &out).expect("accepted dataset must re-serialize");
            std::fs::remove_file(&out).ok();
        }
    }

    /// Random-junk sweep: short arbitrary byte strings (including invalid
    /// UTF-8) must always produce MalformedJson.
    #[test]
    fn arbitrary_bytes_never_panic(words in proptest::collection::vec(0u16..256, 0..64)) {
        let bytes: Vec<u8> = words.iter().map(|w| *w as u8).collect();
        if let Err(err) = try_load("junk", &bytes) {
            prop_assert!(matches!(err, StoreError::MalformedJson { .. }),
                "junk input gave {}", err);
        }
        // Ok is astronomically unlikely but not a contract violation.
    }
}
