//! Per-cell statistics: what the operator's pipeline stores for one
//! (service, BS-group, day) tuple.

use mtd_math::histogram::{LogGrid, LogHistogram};
use mtd_math::{MathError, Result};
use serde::{Deserialize, Serialize};

/// Default volume grid of the dataset: 1 kB .. 10 GB in MB units at 30
/// bins/decade — fine enough to resolve the narrowest residual peaks of
/// §5.2 (σ ≥ 0.06 decades) while keeping cells compact.
#[must_use]
pub fn volume_grid() -> LogGrid {
    LogGrid::new(-3.0, 4.0, 210).expect("valid grid")
}

/// Default duration grid: 1 s .. 24 h, log-spaced, 48 bins ("value pairs
/// of discretized duration and traffic volume", §3.2).
#[must_use]
pub fn duration_grid() -> LogGrid {
    LogGrid::new(0.0, 4.9365, 48).expect("valid grid")
}

/// One aggregated point of the duration–volume relation `v_s(d)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PairPoint {
    /// Duration bin center, seconds.
    pub duration_s: f64,
    /// Mean per-session volume of sessions in this duration bin, MB.
    pub mean_volume_mb: f64,
    /// Number of sessions backing the mean (the Eq. 1 weight).
    pub weight: f64,
}

/// Statistics accumulated for one (service, BS-group, day) cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellStats {
    /// Session count `w_s^{c,t}` — the weight in Eq. (1)/(2).
    pub sessions: f64,
    /// Total traffic volume (MB) of the cell.
    pub traffic_mb: f64,
    /// Histogram of per-session volumes (becomes `F_s^{c,t}` on demand).
    pub volume_hist: LogHistogram,
    /// Sum of volumes per duration bin.
    pub pair_sums: Vec<f64>,
    /// Session count per duration bin.
    pub pair_counts: Vec<f64>,
    /// Sum of `log₁₀(volume)` per duration bin.
    pub pair_log_sums: Vec<f64>,
    /// Sum of `log₁₀(volume)²` per duration bin. Together with
    /// `pair_log_sums` this yields the within-bin dispersion of the
    /// duration–volume relation — still an aggregate (no per-session
    /// data), and the statistic that lets model consumers reproduce the
    /// *scatter* around `v_s(d)`, not just its mean.
    pub pair_log_sum_sqs: Vec<f64>,
}

impl CellStats {
    /// Creates an empty cell on the given grids.
    #[must_use]
    pub fn new(volume_grid: LogGrid, duration_bins: usize) -> CellStats {
        CellStats {
            sessions: 0.0,
            traffic_mb: 0.0,
            volume_hist: LogHistogram::new(volume_grid),
            pair_sums: vec![0.0; duration_bins],
            pair_counts: vec![0.0; duration_bins],
            pair_log_sums: vec![0.0; duration_bins],
            pair_log_sum_sqs: vec![0.0; duration_bins],
        }
    }

    /// Records one session observation (volume MB, duration s).
    pub fn record(&mut self, volume_mb: f64, duration_s: f64, dgrid: &LogGrid) {
        self.sessions += 1.0;
        self.traffic_mb += volume_mb;
        self.volume_hist.add(volume_mb);
        let bin = dgrid.bin_of(duration_s);
        self.pair_sums[bin] += volume_mb;
        self.pair_counts[bin] += 1.0;
        let lv = volume_mb.max(1e-12).log10();
        self.pair_log_sums[bin] += lv;
        self.pair_log_sum_sqs[bin] += lv * lv;
    }

    /// Merges another cell (same grids) into this one.
    pub fn merge(&mut self, other: &CellStats) -> Result<()> {
        if self.pair_sums.len() != other.pair_sums.len() {
            return Err(MathError::DimensionMismatch {
                expected: self.pair_sums.len(),
                got: other.pair_sums.len(),
            });
        }
        self.sessions += other.sessions;
        self.traffic_mb += other.traffic_mb;
        self.volume_hist.merge(&other.volume_hist)?;
        for (a, b) in self.pair_sums.iter_mut().zip(&other.pair_sums) {
            *a += b;
        }
        for (a, b) in self.pair_counts.iter_mut().zip(&other.pair_counts) {
            *a += b;
        }
        for (a, b) in self.pair_log_sums.iter_mut().zip(&other.pair_log_sums) {
            *a += b;
        }
        for (a, b) in self
            .pair_log_sum_sqs
            .iter_mut()
            .zip(&other.pair_log_sum_sqs)
        {
            *a += b;
        }
        Ok(())
    }

    /// Weighted mean within-bin standard deviation of `log₁₀(volume)`
    /// across duration bins with at least `min_count` sessions — the
    /// dispersion of the duration–volume relation around its mean curve.
    #[must_use]
    pub fn pair_dispersion(&self, min_count: f64) -> f64 {
        let mut num = 0.0;
        let mut den = 0.0;
        for i in 0..self.pair_counts.len() {
            let n = self.pair_counts[i];
            if n < min_count {
                continue;
            }
            let mean = self.pair_log_sums[i] / n;
            let var = (self.pair_log_sum_sqs[i] / n - mean * mean).max(0.0);
            num += n * var.sqrt();
            den += n;
        }
        if den > 0.0 {
            num / den
        } else {
            0.0
        }
    }

    /// The duration–volume pairs of this cell: mean volume per non-empty
    /// duration bin, weighted by its session count.
    #[must_use]
    pub fn pairs(&self, dgrid: &LogGrid) -> Vec<PairPoint> {
        (0..self.pair_sums.len())
            .filter(|i| self.pair_counts[*i] > 0.0)
            .map(|i| PairPoint {
                duration_s: dgrid.center_linear(i),
                mean_volume_mb: self.pair_sums[i] / self.pair_counts[i],
                weight: self.pair_counts[i],
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let dg = duration_grid();
        let mut c = CellStats::new(volume_grid(), dg.bins());
        c.record(10.0, 60.0, &dg);
        c.record(20.0, 61.0, &dg);
        assert_eq!(c.sessions, 2.0);
        assert_eq!(c.traffic_mb, 30.0);
        let pairs = c.pairs(&dg);
        assert_eq!(pairs.len(), 1);
        assert!((pairs[0].mean_volume_mb - 15.0).abs() < 1e-12);
        assert_eq!(pairs[0].weight, 2.0);
    }

    #[test]
    fn pairs_split_by_duration_bin() {
        let dg = duration_grid();
        let mut c = CellStats::new(volume_grid(), dg.bins());
        c.record(1.0, 2.0, &dg);
        c.record(100.0, 5_000.0, &dg);
        let pairs = c.pairs(&dg);
        assert_eq!(pairs.len(), 2);
        assert!(pairs[0].duration_s < pairs[1].duration_s);
        assert!(pairs[0].mean_volume_mb < pairs[1].mean_volume_mb);
    }

    #[test]
    fn merge_adds_everything() {
        let dg = duration_grid();
        let mut a = CellStats::new(volume_grid(), dg.bins());
        a.record(5.0, 30.0, &dg);
        let mut b = CellStats::new(volume_grid(), dg.bins());
        b.record(15.0, 30.0, &dg);
        a.merge(&b).unwrap();
        assert_eq!(a.sessions, 2.0);
        assert_eq!(a.traffic_mb, 20.0);
        let pairs = a.pairs(&dg);
        assert!((pairs[0].mean_volume_mb - 10.0).abs() < 1e-12);
    }

    #[test]
    fn grids_have_expected_span() {
        let vg = volume_grid();
        assert_eq!(vg.bin_of(1e-3), 0);
        assert_eq!(vg.bin_of(9.9e3), vg.bins() - 1);
        let dg = duration_grid();
        assert_eq!(dg.bin_of(1.0), 0);
        assert_eq!(dg.bin_of(86_400.0), dg.bins() - 1);
    }
}
