//! Chunk framing of the binary dataset format.
//!
//! A file is `header · chunk* · footer-chunk`. Every chunk — the footer
//! included — uses the same 13-byte frame:
//!
//! ```text
//! kind: u8 | index: u32 LE | payload_len: u32 LE | payload_crc32: u32 LE | payload
//! ```
//!
//! The per-chunk CRC covers the payload only, so a reader that got the
//! frame header intact can verify, skip or re-read a damaged payload and
//! keep streaming. Damage to the frame headers themselves is caught by
//! the footer's whole-file CRC (over every byte before the footer frame).

use crate::format::{Crc32, FormatError, MAX_CHUNK_PAYLOAD};
use std::io::{self, Read};

/// Size of the fixed frame header preceding each payload.
pub const FRAME_HEADER_LEN: usize = 13;

/// What a chunk contains. Stable numeric tags — part of the format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SectionKind {
    /// Grids, service names, groups, group-of-BS table, day count.
    Meta,
    /// Per-BS load deciles and campaign volume totals.
    Deciles,
    /// A batch of (service, group, day) cells.
    Cells,
    /// A batch of per-BS minute series (arrival counts + volumes).
    Minutes,
    /// A batch of per-BS control-plane minute series (attach / handover /
    /// paging counts). Only valid in format v2+ files; v1 readers treat
    /// the tag as unknown.
    Signaling,
    /// End-of-file marker: chunk count + whole-file CRC.
    Footer,
}

impl SectionKind {
    /// The on-disk tag.
    #[must_use]
    pub fn tag(self) -> u8 {
        match self {
            SectionKind::Meta => 1,
            SectionKind::Deciles => 2,
            SectionKind::Cells => 3,
            SectionKind::Minutes => 4,
            SectionKind::Signaling => 5,
            SectionKind::Footer => 0xFF,
        }
    }

    /// Parses an on-disk tag.
    #[must_use]
    pub fn from_tag(tag: u8) -> Option<SectionKind> {
        match tag {
            1 => Some(SectionKind::Meta),
            2 => Some(SectionKind::Deciles),
            3 => Some(SectionKind::Cells),
            4 => Some(SectionKind::Minutes),
            5 => Some(SectionKind::Signaling),
            0xFF => Some(SectionKind::Footer),
            _ => None,
        }
    }

    /// Human-readable section name for reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SectionKind::Meta => "meta",
            SectionKind::Deciles => "deciles",
            SectionKind::Cells => "cells",
            SectionKind::Minutes => "minutes",
            SectionKind::Signaling => "signaling",
            SectionKind::Footer => "footer",
        }
    }
}

/// Appends one framed chunk to `out`.
pub fn write_frame(out: &mut Vec<u8>, kind: SectionKind, index: u32, payload: &[u8]) {
    debug_assert!(payload.len() <= MAX_CHUNK_PAYLOAD as usize, "chunk too big");
    out.push(kind.tag());
    out.extend_from_slice(&index.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crate::format::crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// One frame as read back from a file, CRC already checked (but not
/// enforced — `crc_ok` lets tolerant readers decide what to do).
#[derive(Debug)]
pub struct Frame {
    /// Raw kind tag (kept raw so corrupted tags are reportable).
    pub kind_tag: u8,
    /// Chunk index as stored.
    pub index: u32,
    /// Payload bytes (present even when `crc_ok` is false).
    pub payload: Vec<u8>,
    /// Whether the payload matched its stored CRC.
    pub crc_ok: bool,
    /// Byte offset of the frame header in the file.
    pub offset: u64,
    /// CRC-32 of every file byte before this frame — when this frame is
    /// the footer, this is the whole-file checksum the footer must match.
    pub file_crc_before: u32,
}

impl Frame {
    /// The parsed section kind, if the tag is valid.
    #[must_use]
    pub fn kind(&self) -> Option<SectionKind> {
        SectionKind::from_tag(self.kind_tag)
    }
}

/// Errors that stop frame-level streaming (unlike a payload CRC mismatch,
/// which is survivable and reported inside [`Frame`]).
#[derive(Debug)]
pub enum FrameError {
    /// Underlying read failed.
    Io(io::Error),
    /// The file ended inside a frame header or payload.
    Truncated { offset: u64 },
    /// A frame declared a payload larger than [`MAX_CHUNK_PAYLOAD`] —
    /// almost certainly a corrupted length field; resynchronization is
    /// impossible because frames are not self-delimiting beyond it.
    OversizedChunk { offset: u64, len: u32 },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "I/O error: {e}"),
            FrameError::Truncated { offset } => {
                write!(f, "file truncated inside a chunk at offset {offset}")
            }
            FrameError::OversizedChunk { offset, len } => write!(
                f,
                "chunk at offset {offset} declares an implausible {len}-byte payload"
            ),
        }
    }
}

impl std::error::Error for FrameError {}

/// Streams frames off any reader while accumulating the whole-file CRC.
#[derive(Debug)]
pub struct FrameReader<R: Read> {
    inner: R,
    offset: u64,
    crc: Crc32,
}

impl<R: Read> FrameReader<R> {
    /// Wraps a reader positioned right after the file header, whose bytes
    /// must already have been folded into `crc`.
    #[must_use]
    pub fn new(inner: R, header_len: u64, crc: Crc32) -> FrameReader<R> {
        FrameReader {
            inner,
            offset: header_len,
            crc,
        }
    }

    /// Current byte offset into the file.
    #[must_use]
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Reads exactly `buf.len()` bytes; `Ok(false)` means clean EOF at the
    /// first byte, `Err(Truncated)` means EOF mid-way.
    fn read_exact_or_eof(&mut self, buf: &mut [u8]) -> Result<bool, FrameError> {
        let mut filled = 0;
        while filled < buf.len() {
            match self.inner.read(&mut buf[filled..]) {
                Ok(0) => {
                    if filled == 0 {
                        return Ok(false);
                    }
                    return Err(FrameError::Truncated {
                        offset: self.offset + filled as u64,
                    });
                }
                Ok(n) => filled += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(FrameError::Io(e)),
            }
        }
        Ok(true)
    }

    /// Reads the next frame; `Ok(None)` at clean end of file.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, FrameError> {
        let file_crc_before = self.crc.finish();
        let offset = self.offset;
        let mut header = [0u8; FRAME_HEADER_LEN];
        if !self.read_exact_or_eof(&mut header)? {
            return Ok(None);
        }
        let kind_tag = header[0];
        let index = u32::from_le_bytes(header[1..5].try_into().unwrap());
        let len = u32::from_le_bytes(header[5..9].try_into().unwrap());
        let stored_crc = u32::from_le_bytes(header[9..13].try_into().unwrap());
        if len > MAX_CHUNK_PAYLOAD {
            return Err(FrameError::OversizedChunk { offset, len });
        }
        self.crc.update(&header);
        self.offset += header.len() as u64;

        let mut payload = vec![0u8; len as usize];
        if !self.read_exact_or_eof(&mut payload)? && len > 0 {
            return Err(FrameError::Truncated {
                offset: self.offset,
            });
        }
        self.crc.update(&payload);
        self.offset += u64::from(len);

        let crc_ok = crate::format::crc32(&payload) == stored_crc;
        Ok(Some(Frame {
            kind_tag,
            index,
            payload,
            crc_ok,
            offset,
            file_crc_before,
        }))
    }
}

/// Parses a footer payload: `(chunk_count, stored whole-file CRC)`.
pub fn parse_footer(payload: &[u8]) -> Result<(u32, u32), FormatError> {
    let mut r = crate::format::ByteReader::new(payload);
    let count = r.get_u32()?;
    let crc = r.get_u32()?;
    if !r.is_exhausted() {
        return Err(FormatError("footer has trailing bytes"));
    }
    Ok((count, crc))
}

/// Builds a footer payload.
#[must_use]
pub fn footer_payload(chunk_count: u32, file_crc: u32) -> Vec<u8> {
    let mut w = crate::format::ByteWriter::new();
    w.put_u32(chunk_count);
    w.put_u32(file_crc);
    w.into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::crc32;

    fn frames_of(bytes: &[u8]) -> Vec<Frame> {
        let mut reader = FrameReader::new(bytes, 0, Crc32::new());
        let mut out = Vec::new();
        while let Some(f) = reader.next_frame().unwrap() {
            out.push(f);
        }
        out
    }

    #[test]
    fn frame_roundtrip() {
        let mut bytes = Vec::new();
        write_frame(&mut bytes, SectionKind::Cells, 3, b"hello");
        write_frame(&mut bytes, SectionKind::Minutes, 4, b"");
        let frames = frames_of(&bytes);
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].kind(), Some(SectionKind::Cells));
        assert_eq!(frames[0].index, 3);
        assert_eq!(frames[0].payload, b"hello");
        assert!(frames[0].crc_ok);
        assert_eq!(frames[1].kind(), Some(SectionKind::Minutes));
        assert!(frames[1].payload.is_empty());
        assert!(frames[1].crc_ok);
    }

    #[test]
    fn payload_corruption_is_survivable() {
        let mut bytes = Vec::new();
        write_frame(&mut bytes, SectionKind::Cells, 0, b"aaaa");
        write_frame(&mut bytes, SectionKind::Cells, 1, b"bbbb");
        bytes[FRAME_HEADER_LEN] ^= 0xFF; // first payload byte
        let frames = frames_of(&bytes);
        assert_eq!(frames.len(), 2, "reader must keep going past bad payload");
        assert!(!frames[0].crc_ok);
        assert!(frames[1].crc_ok);
    }

    #[test]
    fn truncation_and_oversize_are_fatal() {
        let mut bytes = Vec::new();
        write_frame(&mut bytes, SectionKind::Cells, 0, b"payload");
        let cut = &bytes[..bytes.len() - 3];
        let mut reader = FrameReader::new(cut, 0, Crc32::new());
        assert!(matches!(
            reader.next_frame(),
            Err(FrameError::Truncated { .. })
        ));

        let mut huge = Vec::new();
        huge.push(SectionKind::Cells.tag());
        huge.extend_from_slice(&0u32.to_le_bytes());
        huge.extend_from_slice(&u32::MAX.to_le_bytes()); // absurd length
        huge.extend_from_slice(&0u32.to_le_bytes());
        let mut reader = FrameReader::new(huge.as_slice(), 0, Crc32::new());
        assert!(matches!(
            reader.next_frame(),
            Err(FrameError::OversizedChunk { .. })
        ));
    }

    #[test]
    fn file_crc_before_footer_matches_manual_crc() {
        let mut bytes = Vec::new();
        write_frame(&mut bytes, SectionKind::Meta, 0, b"meta");
        write_frame(&mut bytes, SectionKind::Cells, 1, b"cells");
        let body_crc = crc32(&bytes);
        write_frame(
            &mut bytes,
            SectionKind::Footer,
            2,
            &footer_payload(2, body_crc),
        );
        let frames = frames_of(&bytes);
        let footer = frames.last().unwrap();
        assert_eq!(footer.kind(), Some(SectionKind::Footer));
        let (count, stored) = parse_footer(&footer.payload).unwrap();
        assert_eq!(count, 2);
        assert_eq!(stored, footer.file_crc_before);
    }

    #[test]
    fn section_tags_roundtrip() {
        for kind in [
            SectionKind::Meta,
            SectionKind::Deciles,
            SectionKind::Cells,
            SectionKind::Minutes,
            SectionKind::Signaling,
            SectionKind::Footer,
        ] {
            assert_eq!(SectionKind::from_tag(kind.tag()), Some(kind));
        }
        assert_eq!(SectionKind::from_tag(0), None);
        assert_eq!(SectionKind::from_tag(200), None);
    }
}
