//! Self-contained JSON codec for the store's compatibility fallback.
//!
//! Reads and writes the exact document shape `#[derive(Serialize)]` +
//! `serde_json` produce for [`Dataset`] (objects with the struct field
//! names, tuples as arrays, unit enum variants as strings, non-finite
//! floats as `null`), so files written by either implementation load in
//! the other. Keeping the codec in-crate means the JSON path carries no
//! runtime dependency and behaves identically in every build.
//!
//! Floats are printed with Rust's shortest-round-trip formatter and
//! parsed with `str::parse`, which recovers the exact bit pattern — the
//! same guarantee the binary format gives, just ~10× slower (see
//! `benches/store.rs`).

use crate::dataset::{CellKey, CellMap, Dataset, GroupKey};
use crate::record::CellStats;
use mtd_math::histogram::{LogGrid, LogHistogram};
use mtd_netsim::geo::Region;
use mtd_netsim::ids::Rat;
use std::fmt::Write as _;

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // Shortest representation that round-trips to the same bits.
        let _ = write!(out, "{v}");
    } else {
        // serde_json's behavior for non-finite floats.
        out.push_str("null");
    }
}

fn push_f32(out: &mut String, v: f32) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

fn push_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_f64_slice(out: &mut String, xs: &[f64]) {
    out.push('[');
    for (i, v) in xs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_f64(out, *v);
    }
    out.push(']');
}

fn push_grid(out: &mut String, g: &LogGrid) {
    let _ = write!(
        out,
        "{{\"lo\":{},\"hi\":{},\"bins\":{}}}",
        g.lo_log10(),
        g.hi_log10(),
        g.bins()
    );
}

fn push_hist(out: &mut String, h: &LogHistogram) {
    out.push_str("{\"grid\":");
    push_grid(out, h.grid());
    out.push_str(",\"counts\":");
    push_f64_slice(out, h.counts());
    out.push_str(",\"total\":");
    push_f64(out, h.total());
    out.push('}');
}

fn push_group(out: &mut String, g: &GroupKey) {
    let region = match g.region {
        Region::DenseUrban => "DenseUrban",
        Region::SemiUrban => "SemiUrban",
        Region::Rural => "Rural",
    };
    let rat = match g.rat {
        Rat::Lte => "Lte",
        Rat::Nr => "Nr",
    };
    let _ = write!(out, "{{\"decile\":{},\"region\":\"{region}\",", g.decile);
    match g.city {
        Some(c) => {
            let _ = write!(out, "\"city\":{c},");
        }
        None => out.push_str("\"city\":null,"),
    }
    let _ = write!(out, "\"rat\":\"{rat}\"}}");
}

fn push_cell(out: &mut String, key: &CellKey, stats: &CellStats) {
    let _ = write!(out, "[[{},{},{}],{{", key.0, key.1, key.2);
    out.push_str("\"sessions\":");
    push_f64(out, stats.sessions);
    out.push_str(",\"traffic_mb\":");
    push_f64(out, stats.traffic_mb);
    out.push_str(",\"volume_hist\":");
    push_hist(out, &stats.volume_hist);
    out.push_str(",\"pair_sums\":");
    push_f64_slice(out, &stats.pair_sums);
    out.push_str(",\"pair_counts\":");
    push_f64_slice(out, &stats.pair_counts);
    out.push_str(",\"pair_log_sums\":");
    push_f64_slice(out, &stats.pair_log_sums);
    out.push_str(",\"pair_log_sum_sqs\":");
    push_f64_slice(out, &stats.pair_log_sum_sqs);
    out.push_str("}]");
}

/// Serializes a dataset to the serde-compatible JSON document.
#[must_use]
pub(crate) fn dataset_to_json(ds: &Dataset) -> String {
    // Cells dominate; ~1.5 kB each is a comfortable overestimate.
    let mut out = String::with_capacity(1024 + ds.cells.len() * 1536);
    out.push_str("{\"volume_grid\":");
    push_grid(&mut out, &ds.volume_grid);
    out.push_str(",\"duration_grid\":");
    push_grid(&mut out, &ds.duration_grid);
    out.push_str(",\"service_names\":[");
    for (i, name) in ds.service_names.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_str(&mut out, name);
    }
    out.push_str("],\"groups\":[");
    for (i, g) in ds.groups.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_group(&mut out, g);
    }
    out.push_str("],\"group_of_bs\":[");
    for (i, v) in ds.group_of_bs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v}");
    }
    out.push_str("],\"decile_of_bs\":[");
    for (i, v) in ds.decile_of_bs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v}");
    }
    out.push_str("],\"bs_total_volume_mb\":");
    push_f64_slice(&mut out, &ds.bs_total_volume_mb);
    out.push_str(",\"cells\":[");
    for (i, (key, stats)) in ds.cells.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_cell(&mut out, key, stats);
    }
    out.push_str("],\"minute_counts\":[");
    for (i, row) in ds.minute_counts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        for (j, v) in row.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "{v}");
        }
        out.push(']');
    }
    out.push_str("],\"minute_volume_mb\":[");
    for (i, row) in ds.minute_volume_mb.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        for (j, v) in row.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            push_f32(&mut out, *v);
        }
        out.push(']');
    }
    let _ = write!(out, "],\"n_days\":{}", ds.n_days);
    // The signaling plane is emitted only when present, matching the
    // serde derive (`skip_serializing_if`) so legacy datasets keep their
    // exact historical JSON bytes.
    if let Some(plane) = ds.signaling() {
        out.push_str(",\"signaling\":{");
        for (i, (key, rows)) in [
            ("attach", &plane.attach),
            ("handover", &plane.handover),
            ("paging", &plane.paging),
        ]
        .iter()
        .enumerate()
        {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{key}\":[");
            for (r, row) in rows.iter().enumerate() {
                if r > 0 {
                    out.push(',');
                }
                out.push('[');
                for (j, v) in row.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{v}");
                }
                out.push(']');
            }
            out.push(']');
        }
        out.push('}');
    }
    out.push('}');
    out
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// A parsed JSON value. Numbers stay as input slices so integers, f64 and
/// f32 all parse from the original token without precision laundering.
#[derive(Debug)]
enum Val<'a> {
    Null,
    // The dataset schema has no boolean fields, so the payload is only
    // inspected by tests; it is kept so the parser covers all of JSON.
    Bool(#[allow(dead_code)] bool),
    Num(&'a str),
    Str(String),
    Arr(Vec<Val<'a>>),
    Obj(Vec<(String, Val<'a>)>),
}

/// Maximum container nesting. The dataset schema needs 5 levels; the
/// recursive-descent parser must reject hostile deeply-nested input
/// (`[[[[…`) with a structured error before it can exhaust the stack.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    text: &'a str,
    pos: usize,
    depth: usize,
}

type PResult<T> = Result<T, String>;

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Parser<'a> {
        Parser {
            bytes: text.as_bytes(),
            text,
            pos: 0,
            depth: 0,
        }
    }

    fn enter(&mut self) -> PResult<()> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err(&format!("nesting deeper than {MAX_DEPTH}")));
        }
        Ok(())
    }

    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> PResult<()> {
        self.skip_ws();
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> PResult<Val<'a>> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Val::Str(self.parse_string()?)),
            Some(b't') if self.eat_literal("true") => Ok(Val::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Val::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(Val::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_object(&mut self) -> PResult<Val<'a>> {
        self.enter()?;
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Val::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Val::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn parse_array(&mut self) -> PResult<Val<'a>> {
        self.enter()?;
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Val::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Val::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_string(&mut self) -> PResult<String> {
        if self.peek() != Some(b'"') {
            return Err(self.err("expected '\"'"));
        }
        self.pos += 1;
        let mut out = String::new();
        let start = self.pos;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    out.push_str(&self.text[start..self.pos]);
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    out.push_str(&self.text[start..self.pos]);
                    self.pos += 1;
                    self.parse_escape(&mut out)?;
                    return self.parse_string_rest(out);
                }
                Some(_) => {
                    // Skip over the full UTF-8 char, not just one byte.
                    let ch = self.text[self.pos..]
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("invalid UTF-8"))?;
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    /// Continues a string after the first escape (the cold path).
    fn parse_string_rest(&mut self, mut out: String) -> PResult<String> {
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.parse_escape(&mut out)?;
                }
                Some(_) => {
                    let ch = self.text[self.pos..]
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("invalid UTF-8"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_escape(&mut self, out: &mut String) -> PResult<()> {
        let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        match esc {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{8}'),
            b'f' => out.push('\u{c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.parse_hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: require the low half.
                    if !self.eat_literal("\\u") {
                        return Err(self.err("unpaired surrogate"));
                    }
                    let lo = self.parse_hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(self.err("invalid low surrogate"));
                    }
                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                } else {
                    hi
                };
                out.push(char::from_u32(code).ok_or_else(|| self.err("invalid \\u escape"))?);
            }
            _ => return Err(self.err("unknown escape")),
        }
        Ok(())
    }

    fn parse_hex4(&mut self) -> PResult<u32> {
        let end = self.pos + 4;
        let slice = self
            .text
            .get(self.pos..end)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let v = u32::from_str_radix(slice, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn parse_number(&mut self) -> PResult<Val<'a>> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if self.pos == start {
            return Err(self.err("malformed number"));
        }
        Ok(Val::Num(&self.text[start..self.pos]))
    }
}

// ---------------------------------------------------------------------------
// Value → Dataset mapping
// ---------------------------------------------------------------------------

fn get<'v, 'a>(obj: &'v [(String, Val<'a>)], name: &str) -> PResult<&'v Val<'a>> {
    obj.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing field `{name}`"))
}

fn as_obj<'v, 'a>(v: &'v Val<'a>, what: &str) -> PResult<&'v [(String, Val<'a>)]> {
    match v {
        Val::Obj(fields) => Ok(fields),
        _ => Err(format!("{what}: expected object")),
    }
}

fn as_arr<'v, 'a>(v: &'v Val<'a>, what: &str) -> PResult<&'v [Val<'a>]> {
    match v {
        Val::Arr(items) => Ok(items),
        _ => Err(format!("{what}: expected array")),
    }
}

fn as_f64(v: &Val<'_>, what: &str) -> PResult<f64> {
    match v {
        Val::Num(tok) => tok.parse().map_err(|_| format!("{what}: bad number {tok}")),
        // serde_json writes non-finite floats as null.
        Val::Null => Ok(f64::NAN),
        _ => Err(format!("{what}: expected number")),
    }
}

fn as_f32(v: &Val<'_>, what: &str) -> PResult<f32> {
    match v {
        Val::Num(tok) => tok.parse().map_err(|_| format!("{what}: bad number {tok}")),
        Val::Null => Ok(f32::NAN),
        _ => Err(format!("{what}: expected number")),
    }
}

fn as_int<T: std::str::FromStr>(v: &Val<'_>, what: &str) -> PResult<T> {
    match v {
        Val::Num(tok) => tok
            .parse()
            .map_err(|_| format!("{what}: bad integer {tok}")),
        _ => Err(format!("{what}: expected integer")),
    }
}

fn as_str<'v>(v: &'v Val<'_>, what: &str) -> PResult<&'v str> {
    match v {
        Val::Str(s) => Ok(s),
        _ => Err(format!("{what}: expected string")),
    }
}

fn f64_vec(v: &Val<'_>, what: &str) -> PResult<Vec<f64>> {
    as_arr(v, what)?.iter().map(|x| as_f64(x, what)).collect()
}

fn grid_from(v: &Val<'_>, what: &str) -> PResult<LogGrid> {
    let obj = as_obj(v, what)?;
    let lo = as_f64(get(obj, "lo")?, what)?;
    let hi = as_f64(get(obj, "hi")?, what)?;
    let bins: usize = as_int(get(obj, "bins")?, what)?;
    LogGrid::new(lo, hi, bins).map_err(|e| format!("{what}: {e}"))
}

fn hist_from(v: &Val<'_>, what: &str) -> PResult<LogHistogram> {
    let obj = as_obj(v, what)?;
    let grid = grid_from(get(obj, "grid")?, what)?;
    let counts = f64_vec(get(obj, "counts")?, what)?;
    let total = as_f64(get(obj, "total")?, what)?;
    LogHistogram::from_parts(grid, counts, total).map_err(|e| format!("{what}: {e}"))
}

fn group_from(v: &Val<'_>) -> PResult<GroupKey> {
    let obj = as_obj(v, "group")?;
    let region = match as_str(get(obj, "region")?, "group.region")? {
        "DenseUrban" => Region::DenseUrban,
        "SemiUrban" => Region::SemiUrban,
        "Rural" => Region::Rural,
        other => return Err(format!("group.region: unknown variant `{other}`")),
    };
    let rat = match as_str(get(obj, "rat")?, "group.rat")? {
        "Lte" => Rat::Lte,
        "Nr" => Rat::Nr,
        other => return Err(format!("group.rat: unknown variant `{other}`")),
    };
    let city = match get(obj, "city")? {
        Val::Null => None,
        v => Some(as_int(v, "group.city")?),
    };
    Ok(GroupKey {
        decile: as_int(get(obj, "decile")?, "group.decile")?,
        region,
        city,
        rat,
    })
}

fn cell_from(v: &Val<'_>) -> PResult<(CellKey, CellStats)> {
    let entry = as_arr(v, "cell entry")?;
    if entry.len() != 2 {
        return Err("cell entry: expected [key, stats]".into());
    }
    let key = as_arr(&entry[0], "cell key")?;
    if key.len() != 3 {
        return Err("cell key: expected [service, group, day]".into());
    }
    let key = (
        as_int(&key[0], "cell key.service")?,
        as_int(&key[1], "cell key.group")?,
        as_int(&key[2], "cell key.day")?,
    );
    let obj = as_obj(&entry[1], "cell stats")?;
    let stats = CellStats {
        sessions: as_f64(get(obj, "sessions")?, "cell.sessions")?,
        traffic_mb: as_f64(get(obj, "traffic_mb")?, "cell.traffic_mb")?,
        volume_hist: hist_from(get(obj, "volume_hist")?, "cell.volume_hist")?,
        pair_sums: f64_vec(get(obj, "pair_sums")?, "cell.pair_sums")?,
        pair_counts: f64_vec(get(obj, "pair_counts")?, "cell.pair_counts")?,
        pair_log_sums: f64_vec(get(obj, "pair_log_sums")?, "cell.pair_log_sums")?,
        pair_log_sum_sqs: f64_vec(get(obj, "pair_log_sum_sqs")?, "cell.pair_log_sum_sqs")?,
    };
    Ok((key, stats))
}

/// Parses the serde-compatible JSON document back into a dataset.
pub(crate) fn dataset_from_json(text: &str) -> Result<Dataset, String> {
    let mut parser = Parser::new(text);
    let root = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing data after JSON document"));
    }
    let obj = as_obj(&root, "dataset")?;

    let service_names = as_arr(get(obj, "service_names")?, "service_names")?
        .iter()
        .map(|v| as_str(v, "service_names").map(str::to_owned))
        .collect::<PResult<Vec<_>>>()?;
    let groups = as_arr(get(obj, "groups")?, "groups")?
        .iter()
        .map(group_from)
        .collect::<PResult<Vec<_>>>()?;
    let group_of_bs = as_arr(get(obj, "group_of_bs")?, "group_of_bs")?
        .iter()
        .map(|v| as_int(v, "group_of_bs"))
        .collect::<PResult<Vec<u16>>>()?;
    let decile_of_bs = as_arr(get(obj, "decile_of_bs")?, "decile_of_bs")?
        .iter()
        .map(|v| as_int(v, "decile_of_bs"))
        .collect::<PResult<Vec<u8>>>()?;
    let mut cells = CellMap::new();
    for entry in as_arr(get(obj, "cells")?, "cells")? {
        let (key, stats) = cell_from(entry)?;
        cells.insert(key, stats);
    }
    let minute_counts = as_arr(get(obj, "minute_counts")?, "minute_counts")?
        .iter()
        .map(|row| {
            as_arr(row, "minute_counts row")?
                .iter()
                .map(|v| as_int(v, "minute_counts"))
                .collect::<PResult<Vec<u32>>>()
        })
        .collect::<PResult<Vec<_>>>()?;
    let minute_volume_mb = as_arr(get(obj, "minute_volume_mb")?, "minute_volume_mb")?
        .iter()
        .map(|row| {
            as_arr(row, "minute_volume_mb row")?
                .iter()
                .map(|v| as_f32(v, "minute_volume_mb"))
                .collect::<PResult<Vec<f32>>>()
        })
        .collect::<PResult<Vec<_>>>()?;
    // Optional: absent in every pre-control-plane document.
    let signaling = match obj.iter().find(|(k, _)| k == "signaling") {
        None | Some((_, Val::Null)) => None,
        Some((_, v)) => {
            let plane = as_obj(v, "signaling")?;
            Some(crate::dataset::SignalingPlane {
                attach: u32_matrix(get(plane, "attach")?, "signaling.attach")?,
                handover: u32_matrix(get(plane, "handover")?, "signaling.handover")?,
                paging: u32_matrix(get(plane, "paging")?, "signaling.paging")?,
            })
        }
    };

    Ok(Dataset {
        volume_grid: grid_from(get(obj, "volume_grid")?, "volume_grid")?,
        duration_grid: grid_from(get(obj, "duration_grid")?, "duration_grid")?,
        service_names,
        groups,
        group_of_bs,
        decile_of_bs,
        bs_total_volume_mb: f64_vec(get(obj, "bs_total_volume_mb")?, "bs_total_volume_mb")?,
        cells,
        minute_counts,
        minute_volume_mb,
        n_days: as_int(get(obj, "n_days")?, "n_days")?,
        signaling,
    })
}

fn u32_matrix(v: &Val<'_>, what: &str) -> PResult<Vec<Vec<u32>>> {
    as_arr(v, what)?
        .iter()
        .map(|row| {
            as_arr(row, what)?
                .iter()
                .map(|v| as_int(v, what))
                .collect::<PResult<Vec<u32>>>()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_handles_strings_numbers_and_structure() {
        let mut p = Parser::new(r#"  {"a": [1, -2.5e3, null, true], "bé": "x\nyA"} "#);
        let root = p.parse_value().unwrap();
        let obj = as_obj(&root, "t").unwrap();
        let arr = as_arr(get(obj, "a").unwrap(), "t").unwrap();
        assert_eq!(as_f64(&arr[0], "t").unwrap(), 1.0);
        assert_eq!(as_f64(&arr[1], "t").unwrap(), -2500.0);
        assert!(as_f64(&arr[2], "t").unwrap().is_nan());
        assert!(matches!(arr[3], Val::Bool(true)));
        assert_eq!(as_str(get(obj, "bé").unwrap(), "t").unwrap(), "x\nyA");
    }

    #[test]
    fn parser_handles_surrogate_pairs() {
        let mut p = Parser::new(r#""😀""#);
        assert_eq!(p.parse_string().unwrap(), "😀");
        let mut bad = Parser::new(r#""\ud83d""#);
        assert!(bad.parse_string().is_err());
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for text in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "{\"a\":1,}",
            "nul",
            "\"unterminated",
            "01x",
        ] {
            assert!(
                Parser::new(text)
                    .parse_value()
                    .and_then(|_| {
                        // Values followed by junk are caught by the caller;
                        // mimic dataset_from_json's trailing-data check.
                        let mut p = Parser::new(text);
                        let v = p.parse_value()?;
                        p.skip_ws();
                        if p.pos != p.bytes.len() {
                            return Err("trailing".into());
                        }
                        Ok(v)
                    })
                    .is_err(),
                "accepted malformed input: {text:?}"
            );
        }
    }

    #[test]
    fn float_text_roundtrip_is_bit_exact() {
        for v in [
            0.0,
            -0.0,
            1.5,
            std::f64::consts::PI,
            1e300,
            5e-324,
            -123456.789012345,
        ] {
            let mut s = String::new();
            push_f64(&mut s, v);
            let mut p = Parser::new(&s);
            let back = as_f64(&p.parse_value().unwrap(), "t").unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "via {s}");
        }
    }
}
