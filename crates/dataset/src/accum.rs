//! Quantized, order-independent accumulation of engine observations.
//!
//! Floating-point addition is not associative, so per-shard partial sums
//! merged across shards would differ from a monolithic run by ULPs — and
//! the campaign runner promises **byte-identical** stores for any shard
//! count, thread count, or kill/resume point. The fix is to accumulate
//! every real-valued statistic as a fixed-point integer: integer addition
//! is associative, so any grouping of the same observations produces the
//! same sums, and the float value is materialized exactly once, at
//! finalize time, by a single division.
//!
//! Quantization steps:
//!
//! - volumes (MB): `2⁻²⁰` MB ≈ 1 byte — far below the generator's output
//!   granularity, worst-case relative error ~1e-10 on a 1 MB session;
//! - `log₁₀(volume)` and its square: `2⁻³²` — the fit pipelines consume
//!   these through means and variances where the error vanishes.
//!
//! Sums are `i128` (a campaign of 10⁹ observations × 10¹⁰ quantized units
//! per observation stays 60+ bits from overflow); counts are plain `u64`.
//!
//! [`Dataset::build`](crate::Dataset::build) itself accumulates through
//! this module, so a sharded campaign and a monolithic build are the same
//! pipeline by construction, not by coincidence.

use crate::dataset::{CellKey, SignalingPlane};
use crate::record::CellStats;
use mtd_math::histogram::{LogGrid, LogHistogram};
use mtd_netsim::engine::EngineSink;
use mtd_netsim::probes::{SignalingEvent, SignalingKind};
use mtd_netsim::session::SessionObservation;
use mtd_netsim::time::MINUTES_PER_DAY;
use std::collections::BTreeMap;

/// Fixed-point scale for traffic volumes (MB): 2²⁰ units per MB.
pub const Q_VOL: f64 = 1_048_576.0;
/// Fixed-point scale for `log₁₀(volume)` statistics: 2³² units.
pub const Q_LOG: f64 = 4_294_967_296.0;

/// Quantizes a volume (MB) to fixed-point units.
#[inline]
#[must_use]
pub fn q_vol(v: f64) -> i128 {
    (v * Q_VOL).round() as i128
}

/// Dequantizes a fixed-point volume sum back to MB.
#[inline]
#[must_use]
pub fn dq_vol(q: i128) -> f64 {
    q as f64 / Q_VOL
}

/// Quantizes a `log₁₀` statistic to fixed-point units.
#[inline]
#[must_use]
pub fn q_log(v: f64) -> i128 {
    (v * Q_LOG).round() as i128
}

/// Dequantizes a fixed-point `log₁₀` sum.
#[inline]
#[must_use]
pub fn dq_log(q: i128) -> f64 {
    q as f64 / Q_LOG
}

/// One (service, BS-group, day) cell accumulated in fixed point — the
/// exact-arithmetic twin of [`CellStats`]. Fields are public so the
/// campaign runner can spill and reload shards without a codec here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExactCell {
    /// Session count (`sessions` in [`CellStats`]).
    pub sessions: u64,
    /// Total traffic volume, quantized MB.
    pub traffic_q: i128,
    /// Volume histogram bin counts. Kept separate from `sessions`
    /// because `LogHistogram::add` skips non-finite values.
    pub hist_counts: Vec<u64>,
    /// Total weight of `hist_counts`.
    pub hist_total: u64,
    /// Sum of volumes per duration bin, quantized MB.
    pub pair_vol_q: Vec<i128>,
    /// Session count per duration bin.
    pub pair_counts: Vec<u64>,
    /// Sum of `log₁₀(volume)` per duration bin, quantized.
    pub pair_log_q: Vec<i128>,
    /// Sum of `log₁₀(volume)²` per duration bin, quantized. The square
    /// is quantized directly (not squared after quantization) so the
    /// finalized value is one rounding away from the float it replaces.
    pub pair_log_sq_q: Vec<i128>,
}

impl ExactCell {
    /// An empty cell on `volume_bins` histogram bins and
    /// `duration_bins` pair bins.
    #[must_use]
    pub fn new(volume_bins: usize, duration_bins: usize) -> ExactCell {
        ExactCell {
            sessions: 0,
            traffic_q: 0,
            hist_counts: vec![0; volume_bins],
            hist_total: 0,
            pair_vol_q: vec![0; duration_bins],
            pair_counts: vec![0; duration_bins],
            pair_log_q: vec![0; duration_bins],
            pair_log_sq_q: vec![0; duration_bins],
        }
    }

    /// Records one session observation — the integer mirror of
    /// [`CellStats::record`].
    pub fn record(&mut self, volume_mb: f64, duration_s: f64, vgrid: &LogGrid, dgrid: &LogGrid) {
        self.sessions += 1;
        self.traffic_q += q_vol(volume_mb);
        if volume_mb.is_finite() {
            self.hist_counts[vgrid.bin_of(volume_mb)] += 1;
            self.hist_total += 1;
        }
        let bin = dgrid.bin_of(duration_s);
        self.pair_vol_q[bin] += q_vol(volume_mb);
        self.pair_counts[bin] += 1;
        let lv = volume_mb.max(1e-12).log10();
        self.pair_log_q[bin] += q_log(lv);
        self.pair_log_sq_q[bin] += q_log(lv * lv);
    }

    /// Adds another cell (same bin counts) into this one. Pure integer
    /// addition: associative and commutative, so merge order never
    /// changes the result.
    pub fn merge(&mut self, other: &ExactCell) {
        assert_eq!(self.pair_counts.len(), other.pair_counts.len());
        assert_eq!(self.hist_counts.len(), other.hist_counts.len());
        self.sessions += other.sessions;
        self.traffic_q += other.traffic_q;
        self.hist_total += other.hist_total;
        for (a, b) in self.hist_counts.iter_mut().zip(&other.hist_counts) {
            *a += b;
        }
        for (a, b) in self.pair_vol_q.iter_mut().zip(&other.pair_vol_q) {
            *a += b;
        }
        for (a, b) in self.pair_counts.iter_mut().zip(&other.pair_counts) {
            *a += b;
        }
        for (a, b) in self.pair_log_q.iter_mut().zip(&other.pair_log_q) {
            *a += b;
        }
        for (a, b) in self.pair_log_sq_q.iter_mut().zip(&other.pair_log_sq_q) {
            *a += b;
        }
    }

    /// Finalizes into the float [`CellStats`] the store encodes. Every
    /// field is a deterministic function of the integer sums, so equal
    /// sums yield bit-equal stats.
    #[must_use]
    pub fn to_cell_stats(&self, vgrid: &LogGrid) -> CellStats {
        let counts: Vec<f64> = self.hist_counts.iter().map(|c| *c as f64).collect();
        CellStats {
            sessions: self.sessions as f64,
            traffic_mb: dq_vol(self.traffic_q),
            volume_hist: LogHistogram::from_parts(*vgrid, counts, self.hist_total as f64)
                .expect("counts match grid"),
            pair_sums: self.pair_vol_q.iter().map(|q| dq_vol(*q)).collect(),
            pair_counts: self.pair_counts.iter().map(|c| *c as f64).collect(),
            pair_log_sums: self.pair_log_q.iter().map(|q| dq_log(*q)).collect(),
            pair_log_sum_sqs: self.pair_log_sq_q.iter().map(|q| dq_log(*q)).collect(),
        }
    }
}

/// Pass-1 sink: per-BS quantized volume totals for decile assignment.
pub struct VolumeTotalsQ {
    /// Quantized total volume per global BS id.
    pub totals_q: Vec<i128>,
}

impl VolumeTotalsQ {
    /// Zeroed totals for `n_bs` stations.
    #[must_use]
    pub fn new(n_bs: usize) -> VolumeTotalsQ {
        VolumeTotalsQ {
            totals_q: vec![0; n_bs],
        }
    }

    /// Dequantized totals in MB.
    #[must_use]
    pub fn totals_mb(&self) -> Vec<f64> {
        self.totals_q.iter().map(|q| dq_vol(*q)).collect()
    }
}

impl EngineSink for VolumeTotalsQ {
    fn on_observation(&mut self, obs: &SessionObservation) {
        self.totals_q[obs.bs.0 as usize] += q_vol(obs.volume_mb);
    }
}

/// One BS's per-minute row in fixed point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinuteRowQ {
    /// Session starts per campaign minute.
    pub counts: Vec<u32>,
    /// Traffic volume per campaign minute, quantized MB. `i64` suffices:
    /// a single BS-minute stays far below 2⁴³ quantized units.
    pub vol_q: Vec<i64>,
}

impl MinuteRowQ {
    fn new(row_len: usize) -> MinuteRowQ {
        MinuteRowQ {
            counts: vec![0; row_len],
            vol_q: vec![0; row_len],
        }
    }

    /// Finalizes into the dense `(counts, volumes)` row the store
    /// encodes.
    #[must_use]
    pub fn to_row(&self) -> (Vec<u32>, Vec<f32>) {
        (
            self.counts.clone(),
            self.vol_q
                .iter()
                .map(|q| dq_vol(i128::from(*q)) as f32)
                .collect(),
        )
    }

    /// Adds another row of the same length into this one.
    pub fn merge(&mut self, other: &MinuteRowQ) {
        assert_eq!(self.counts.len(), other.counts.len());
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        for (a, b) in self.vol_q.iter_mut().zip(&other.vol_q) {
            *a += b;
        }
    }
}

/// One BS's per-minute control-plane row: attach, handover, and paging
/// event counts. Counts are plain `u32` adds — associative, so any
/// shard partition merges to the monolithic result exactly, the same
/// argument as [`MinuteRowQ`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignalRowQ {
    /// Attach events per campaign minute.
    pub attach: Vec<u32>,
    /// Handover-in events per campaign minute.
    pub handover: Vec<u32>,
    /// Paging events per campaign minute.
    pub paging: Vec<u32>,
}

impl SignalRowQ {
    fn new(row_len: usize) -> SignalRowQ {
        SignalRowQ {
            attach: vec![0; row_len],
            handover: vec![0; row_len],
            paging: vec![0; row_len],
        }
    }

    /// Adds another row of the same length into this one.
    pub fn merge(&mut self, other: &SignalRowQ) {
        assert_eq!(self.attach.len(), other.attach.len());
        for (a, b) in self.attach.iter_mut().zip(&other.attach) {
            *a += b;
        }
        for (a, b) in self.handover.iter_mut().zip(&other.handover) {
            *a += b;
        }
        for (a, b) in self.paging.iter_mut().zip(&other.paging) {
            *a += b;
        }
    }
}

/// Pass-2 sink: accumulates cells and minute rows for (a shard of) a
/// campaign in fixed point.
///
/// Observations are attributed by **global** BS id, so a shard sink also
/// collects handover fragments that land on neighbor stations outside
/// its own range; the campaign assembler merges those cross-shard
/// contributions with integer adds, reproducing the monolithic result
/// exactly. Rows are kept sparse (only touched BSs) so a shard's memory
/// scales with its own size plus the handover fringe, not with `n_bs`.
pub struct ShardAccumulator {
    volume_grid: LogGrid,
    duration_grid: LogGrid,
    group_of_bs: Vec<u16>,
    n_days: u32,
    row_len: usize,
    /// Accumulated cells keyed by (service, group, day).
    pub cells: BTreeMap<CellKey, ExactCell>,
    /// Accumulated minute rows keyed by global BS id.
    pub minutes: BTreeMap<u32, MinuteRowQ>,
    /// Accumulated control-plane rows keyed by global BS id. `None`
    /// means signaling collection is disabled (the default), so
    /// non-control-plane campaigns pay nothing and produce datasets
    /// without the plane.
    pub signaling: Option<BTreeMap<u32, SignalRowQ>>,
}

impl ShardAccumulator {
    /// An empty accumulator for a campaign with the given group table.
    #[must_use]
    pub fn new(
        volume_grid: LogGrid,
        duration_grid: LogGrid,
        group_of_bs: Vec<u16>,
        n_days: u32,
    ) -> ShardAccumulator {
        ShardAccumulator {
            volume_grid,
            duration_grid,
            group_of_bs,
            n_days,
            row_len: (n_days * MINUTES_PER_DAY) as usize,
            cells: BTreeMap::new(),
            minutes: BTreeMap::new(),
            signaling: None,
        }
    }

    /// Turns on control-plane collection: subsequent signaling events
    /// are accumulated into per-BS [`SignalRowQ`] rows and
    /// [`Self::finalize_signaling`] returns `Some`.
    pub fn enable_signaling(&mut self) {
        if self.signaling.is_none() {
            self.signaling = Some(BTreeMap::new());
        }
    }

    /// Records one signaling event into the control plane (no-op unless
    /// [`Self::enable_signaling`] was called). Events are attributed to
    /// the BS carried by the event kind; `Detach` carries none and only
    /// tears down UE state, so it is not counted. Events past the
    /// campaign horizon are dropped, mirroring [`Self::record`].
    pub fn record_signaling(&mut self, ev: &SignalingEvent) {
        let Some(signaling) = &mut self.signaling else {
            return;
        };
        let bs = match ev.kind {
            SignalingKind::Attach(bs) | SignalingKind::Handover(bs) | SignalingKind::Paging(bs) => {
                bs
            }
            SignalingKind::Detach => return,
        };
        let day = ev.time.day;
        if day >= self.n_days {
            mtd_telemetry::count("dataset.signaling.spilled", 1);
            return;
        }
        let minute = (day * MINUTES_PER_DAY + ev.time.minute_of_day()) as usize;
        let row_len = self.row_len;
        let row = signaling
            .entry(bs.0)
            .or_insert_with(|| SignalRowQ::new(row_len));
        match ev.kind {
            SignalingKind::Attach(_) => row.attach[minute] += 1,
            SignalingKind::Handover(_) => row.handover[minute] += 1,
            SignalingKind::Paging(_) => row.paging[minute] += 1,
            SignalingKind::Detach => unreachable!("filtered above"),
        }
    }

    /// Records one observation (same attribution rules as
    /// [`crate::Dataset::record_observation`]).
    pub fn record(&mut self, obs: &SessionObservation) {
        let day = obs.start.day;
        if day >= self.n_days {
            // Sessions spilling past the campaign end are not measured.
            mtd_telemetry::count("dataset.observations.spilled", 1);
            return;
        }
        let minute = (day * MINUTES_PER_DAY + obs.start.minute_of_day()) as usize;
        let row_len = self.row_len;
        let row = self
            .minutes
            .entry(obs.bs.0)
            .or_insert_with(|| MinuteRowQ::new(row_len));
        row.counts[minute] += 1;
        row.vol_q[minute] += q_vol(obs.volume_mb) as i64;

        let key = (obs.service.0, self.group_of_bs[obs.bs.0 as usize], day);
        let (vbins, dbins) = (self.volume_grid.bins(), self.duration_grid.bins());
        self.cells
            .entry(key)
            .or_insert_with(|| ExactCell::new(vbins, dbins))
            .record(
                obs.volume_mb,
                obs.duration_s,
                &self.volume_grid,
                &self.duration_grid,
            );
    }

    /// Merges another accumulator (same campaign) into this one.
    pub fn merge(&mut self, other: &ShardAccumulator) {
        for (key, cell) in &other.cells {
            let (vbins, dbins) = (self.volume_grid.bins(), self.duration_grid.bins());
            self.cells
                .entry(*key)
                .or_insert_with(|| ExactCell::new(vbins, dbins))
                .merge(cell);
        }
        for (bs, row) in &other.minutes {
            let row_len = self.row_len;
            self.minutes
                .entry(*bs)
                .or_insert_with(|| MinuteRowQ::new(row_len))
                .merge(row);
        }
        if let Some(other_sig) = &other.signaling {
            self.enable_signaling();
            let row_len = self.row_len;
            let signaling = self.signaling.as_mut().expect("just enabled");
            for (bs, row) in other_sig {
                signaling
                    .entry(*bs)
                    .or_insert_with(|| SignalRowQ::new(row_len))
                    .merge(row);
            }
        }
    }

    /// Finalizes the cells into their float [`CellStats`] form.
    #[must_use]
    pub fn finalize_cells(&self) -> BTreeMap<CellKey, CellStats> {
        self.cells
            .iter()
            .map(|(k, c)| (*k, c.to_cell_stats(&self.volume_grid)))
            .collect()
    }

    /// Finalizes the minute rows into dense per-BS arrays for `n_bs`
    /// stations (untouched BSs get zero rows).
    #[must_use]
    pub fn finalize_minutes(&self, n_bs: usize) -> (Vec<Vec<u32>>, Vec<Vec<f32>>) {
        let mut counts = vec![vec![0u32; self.row_len]; n_bs];
        let mut volumes = vec![vec![0.0f32; self.row_len]; n_bs];
        for (bs, row) in &self.minutes {
            let (c, v) = row.to_row();
            counts[*bs as usize] = c;
            volumes[*bs as usize] = v;
        }
        (counts, volumes)
    }

    /// Finalizes the control plane into dense per-BS rows for `n_bs`
    /// stations (untouched BSs get zero rows). `None` when signaling
    /// collection was never enabled.
    #[must_use]
    pub fn finalize_signaling(&self, n_bs: usize) -> Option<SignalingPlane> {
        let signaling = self.signaling.as_ref()?;
        let mut plane = SignalingPlane::zeroed(n_bs, self.row_len);
        for (bs, row) in signaling {
            plane.attach[*bs as usize] = row.attach.clone();
            plane.handover[*bs as usize] = row.handover.clone();
            plane.paging[*bs as usize] = row.paging.clone();
        }
        Some(plane)
    }

    /// Minute-row length (`n_days × 1440`).
    #[must_use]
    pub fn row_len(&self) -> usize {
        self.row_len
    }
}

impl EngineSink for ShardAccumulator {
    fn on_observation(&mut self, obs: &SessionObservation) {
        self.record(obs);
    }

    fn on_signaling(&mut self, ev: &SignalingEvent) {
        self.record_signaling(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{duration_grid, volume_grid};
    use mtd_netsim::ids::{BsId, Rat, ServiceId, SessionId};
    use mtd_netsim::time::SimTime;

    fn obs(bs: u32, service: u16, day: u32, secs: f64, vol: f64, dur: f64) -> SessionObservation {
        SessionObservation {
            session: SessionId(1),
            bs: BsId(bs),
            rat: Rat::Lte,
            service: ServiceId(service),
            start: SimTime::new(day, secs),
            duration_s: dur,
            volume_mb: vol,
            transient: false,
            segment_index: 0,
        }
    }

    /// A deterministic pseudo-random stream of observations.
    fn stream(n: usize, n_bs: u32) -> Vec<SessionObservation> {
        let mut state = 0x0123_4567_89AB_CDEF_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1);
            state >> 33
        };
        (0..n)
            .map(|_| {
                let bs = (next() % u64::from(n_bs)) as u32;
                let service = (next() % 7) as u16;
                let day = (next() % 3) as u32;
                let secs = (next() % 86_400) as f64 + 0.5;
                let vol = 10f64.powf((next() % 6000) as f64 / 1000.0 - 2.0);
                let dur = 1.0 + (next() % 4000) as f64;
                obs(bs, service, day, secs, vol, dur)
            })
            .collect()
    }

    fn accum(observations: &[SessionObservation], group_of_bs: Vec<u16>) -> ShardAccumulator {
        let mut acc = ShardAccumulator::new(volume_grid(), duration_grid(), group_of_bs, 3);
        for o in observations {
            acc.record(o);
        }
        acc
    }

    #[test]
    fn merge_grouping_is_unobservable() {
        // The campaign invariant in miniature: any partition of the same
        // observation stream into accumulators, merged in any order,
        // yields identical integer state.
        let all = stream(2_000, 8);
        let groups = vec![0u16; 8];
        let monolithic = accum(&all, groups.clone());

        for parts in [2usize, 3, 7] {
            let chunk = all.len().div_ceil(parts);
            let mut merged =
                ShardAccumulator::new(volume_grid(), duration_grid(), groups.clone(), 3);
            // Merge shards in reverse order to stress order-independence.
            let shards: Vec<ShardAccumulator> = all
                .chunks(chunk)
                .map(|c| accum(c, groups.clone()))
                .collect();
            for shard in shards.iter().rev() {
                merged.merge(shard);
            }
            assert_eq!(merged.cells, monolithic.cells, "parts={parts}");
            assert_eq!(merged.minutes, monolithic.minutes, "parts={parts}");
            // And the finalized float form is bit-equal, not just close.
            let a = merged.finalize_cells();
            let b = monolithic.finalize_cells();
            assert_eq!(a, b, "parts={parts}");
        }
    }

    #[test]
    fn exact_cell_tracks_cellstats_closely() {
        // The quantized pipeline replaces float accumulation; the
        // finalized values must match a direct CellStats accumulation to
        // quantization precision, and counts exactly.
        let dg = duration_grid();
        let vg = volume_grid();
        let mut exact = ExactCell::new(vg.bins(), dg.bins());
        let mut float = CellStats::new(vg, dg.bins());
        for o in stream(500, 1) {
            exact.record(o.volume_mb, o.duration_s, &vg, &dg);
            float.record(o.volume_mb, o.duration_s, &dg);
        }
        let finalized = exact.to_cell_stats(&vg);
        assert_eq!(finalized.sessions, float.sessions);
        assert_eq!(finalized.volume_hist.counts(), float.volume_hist.counts());
        assert_eq!(finalized.volume_hist.total(), float.volume_hist.total());
        assert_eq!(finalized.pair_counts, float.pair_counts);
        let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(1e-300);
        assert!(rel(finalized.traffic_mb, float.traffic_mb) < 1e-9);
        for i in 0..dg.bins() {
            if float.pair_counts[i] == 0.0 {
                continue;
            }
            assert!(rel(finalized.pair_sums[i], float.pair_sums[i]) < 1e-6);
            assert!((finalized.pair_log_sums[i] - float.pair_log_sums[i]).abs() < 1e-6);
            assert!((finalized.pair_log_sum_sqs[i] - float.pair_log_sum_sqs[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn spilled_observations_are_dropped() {
        let mut acc = ShardAccumulator::new(volume_grid(), duration_grid(), vec![0], 2);
        acc.record(&obs(0, 0, 2, 10.0, 1.0, 60.0)); // day 2 of a 2-day run
        assert!(acc.cells.is_empty());
        assert!(acc.minutes.is_empty());
    }

    fn sig(bs: u32, day: u32, secs: f64, which: u64) -> SignalingEvent {
        use mtd_netsim::ids::UeId;
        let kind = match which % 4 {
            0 => SignalingKind::Attach(BsId(bs)),
            1 => SignalingKind::Handover(BsId(bs)),
            2 => SignalingKind::Paging(BsId(bs)),
            _ => SignalingKind::Detach,
        };
        SignalingEvent {
            ue: UeId(1),
            time: SimTime::new(day, secs),
            kind,
        }
    }

    /// A deterministic pseudo-random stream of signaling events.
    fn sig_stream(n: usize, n_bs: u32) -> Vec<SignalingEvent> {
        let mut state = 0xFEED_FACE_CAFE_BEEF_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1);
            state >> 33
        };
        (0..n)
            .map(|_| {
                let bs = (next() % u64::from(n_bs)) as u32;
                let day = (next() % 3) as u32;
                let secs = (next() % 86_400) as f64 + 0.25;
                sig(bs, day, secs, next())
            })
            .collect()
    }

    #[test]
    fn signaling_merge_is_partition_invariant() {
        let events = sig_stream(3_000, 8);
        let groups = vec![0u16; 8];
        let mut mono = ShardAccumulator::new(volume_grid(), duration_grid(), groups.clone(), 3);
        mono.enable_signaling();
        for ev in &events {
            mono.record_signaling(ev);
        }

        for parts in [2usize, 3, 7] {
            let chunk = events.len().div_ceil(parts);
            let mut merged =
                ShardAccumulator::new(volume_grid(), duration_grid(), groups.clone(), 3);
            merged.enable_signaling();
            let shards: Vec<ShardAccumulator> = events
                .chunks(chunk)
                .map(|c| {
                    let mut acc =
                        ShardAccumulator::new(volume_grid(), duration_grid(), groups.clone(), 3);
                    acc.enable_signaling();
                    for ev in c {
                        acc.record_signaling(ev);
                    }
                    acc
                })
                .collect();
            for shard in shards.iter().rev() {
                merged.merge(shard);
            }
            assert_eq!(merged.signaling, mono.signaling, "parts={parts}");
            assert_eq!(
                merged.finalize_signaling(8),
                mono.finalize_signaling(8),
                "parts={parts}"
            );
        }
    }

    #[test]
    fn signaling_is_gated_and_drops_spill_and_detach() {
        let mut acc = ShardAccumulator::new(volume_grid(), duration_grid(), vec![0, 0], 2);
        // Disabled: events vanish and finalize stays None.
        acc.record_signaling(&sig(0, 0, 5.0, 0));
        assert!(acc.finalize_signaling(2).is_none());

        acc.enable_signaling();
        acc.record_signaling(&sig(0, 0, 65.0, 0)); // attach, minute 1
        acc.record_signaling(&sig(1, 1, 5.0, 1)); // handover, day 1
        acc.record_signaling(&sig(0, 0, 5.0, 2)); // paging, minute 0
        acc.record_signaling(&sig(0, 0, 5.0, 3)); // detach: not counted
        acc.record_signaling(&sig(0, 2, 5.0, 0)); // past horizon: dropped
        let plane = acc.finalize_signaling(2).expect("enabled");
        assert_eq!(plane.attach[0].iter().sum::<u32>(), 1);
        assert_eq!(plane.attach[0][1], 1);
        assert_eq!(plane.handover[1][1440], 1);
        assert_eq!(plane.paging[0][0], 1);
        assert_eq!(plane.handover[0].iter().sum::<u32>(), 0);
        // Rows are dense with the full campaign length.
        assert_eq!(plane.attach[1].len(), 2 * 1440);
    }

    #[test]
    fn volume_totals_are_partition_invariant() {
        let all = stream(1_000, 5);
        let mut mono = VolumeTotalsQ::new(5);
        for o in &all {
            mono.on_observation(o);
        }
        let mut merged = VolumeTotalsQ::new(5);
        for part in all.chunks(137) {
            let mut shard = VolumeTotalsQ::new(5);
            for o in part {
                shard.on_observation(o);
            }
            for (a, b) in merged.totals_q.iter_mut().zip(&shard.totals_q) {
                *a += b;
            }
        }
        assert_eq!(merged.totals_q, mono.totals_q);
        assert_eq!(merged.totals_mb(), mono.totals_mb());
    }
}
