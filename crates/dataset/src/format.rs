//! Byte-level primitives of the binary dataset format (`mtd-store` v2).
//!
//! Everything on disk is little-endian. Floating-point values are stored
//! as their IEEE-754 bit patterns (`to_le_bytes` of `to_bits`), so a
//! decode → encode round trip is byte-identical — the property the store's
//! tests pin. Vectors that are mostly zero (histogram bins, per-minute
//! series at low load) use a per-vector sparse encoding chosen
//! automatically when it is smaller than the dense form.
//!
//! The CRC-32 here is the standard IEEE/zlib polynomial (reflected
//! `0xEDB88320`), implemented with a compile-time table — the workspace
//! stays zero-dependency beyond serde. CRC-32 detects *every* single-byte
//! error, which is what the corruption battery relies on.

use std::fmt;

/// 8-byte magic opening every binary dataset file.
pub const MAGIC: [u8; 8] = *b"MTDSTORE";

/// Current on-disk format version. Bump on any layout change and teach
/// the reader the old versions (or reject them with a clear error).
pub const FORMAT_VERSION: u32 = 1;

/// Hard cap on a single chunk's payload, so a corrupted length field can
/// never drive a multi-gigabyte allocation.
pub const MAX_CHUNK_PAYLOAD: u32 = 64 << 20;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE)
// ---------------------------------------------------------------------------

/// Slice-by-8 tables: `CRC_TABLES[0]` is the classic byte-at-a-time
/// table; table `j` advances a byte seen `j` positions earlier through
/// `j` additional zero bytes. Processing 8 input bytes per step keeps
/// the (serial) whole-file scan off the decode critical path.
const CRC_TABLES: [[u32; 256]; 8] = {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        t[0][i] = c;
        i += 1;
    }
    let mut j = 1;
    while j < 8 {
        let mut i = 0;
        while i < 256 {
            t[j][i] = (t[j - 1][i] >> 8) ^ t[0][(t[j - 1][i] & 0xFF) as usize];
            i += 1;
        }
        j += 1;
    }
    t
};

/// Incremental CRC-32 (IEEE 802.3 / zlib `crc32`).
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    /// Starts a fresh checksum.
    #[must_use]
    pub fn new() -> Crc32 {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds bytes into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut c = self.state;
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let lo = u32::from_le_bytes(chunk[0..4].try_into().unwrap()) ^ c;
            let hi = u32::from_le_bytes(chunk[4..8].try_into().unwrap());
            c = CRC_TABLES[7][(lo & 0xFF) as usize]
                ^ CRC_TABLES[6][((lo >> 8) & 0xFF) as usize]
                ^ CRC_TABLES[5][((lo >> 16) & 0xFF) as usize]
                ^ CRC_TABLES[4][(lo >> 24) as usize]
                ^ CRC_TABLES[3][(hi & 0xFF) as usize]
                ^ CRC_TABLES[2][((hi >> 8) & 0xFF) as usize]
                ^ CRC_TABLES[1][((hi >> 16) & 0xFF) as usize]
                ^ CRC_TABLES[0][(hi >> 24) as usize];
        }
        for b in chunks.remainder() {
            c = CRC_TABLES[0][((c ^ u32::from(*b)) & 0xFF) as usize] ^ (c >> 8);
        }
        self.state = c;
    }

    /// The finalized checksum value.
    #[must_use]
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of a byte slice.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// A malformed payload (truncated, out-of-range tag, inconsistent count).
///
/// Deliberately small: payload parse failures are reported per chunk by
/// the store, which wraps them with the chunk's kind/index/offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FormatError(pub &'static str);

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for FormatError {}

/// Result alias for payload codecs.
pub type FormatResult<T> = std::result::Result<T, FormatError>;

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Append-only little-endian byte sink for chunk payloads.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    #[must_use]
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// Consumes the writer, returning the accumulated bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Stores the exact IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Stores the exact IEEE-754 bit pattern.
    pub fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    /// Length-prefixed (u16) UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        debug_assert!(s.len() <= u16::MAX as usize, "string too long for format");
        self.put_u16(s.len() as u16);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// A dense f64 vector: count then bit patterns.
    pub fn put_f64_dense(&mut self, v: &[f64]) {
        self.put_u32(v.len() as u32);
        for x in v {
            self.put_f64(*x);
        }
    }

    /// An f64 vector, sparse when that is smaller: tag byte (0 = dense,
    /// 1 = sparse), length, then either all values or `(u32 index, f64)`
    /// pairs for the non-zero entries. "Zero" means the bit pattern of
    /// `+0.0` — a stored `-0.0` survives exactly via the sparse pairs.
    pub fn put_f64_vec(&mut self, v: &[f64]) {
        let nnz = v.iter().filter(|x| x.to_bits() != 0).count();
        // Sparse entry: 4 (index) + 8 (value); dense entry: 8.
        if nnz * 12 < v.len() * 8 {
            self.put_u8(1);
            self.put_u32(v.len() as u32);
            self.put_u32(nnz as u32);
            for (i, x) in v.iter().enumerate() {
                if x.to_bits() != 0 {
                    self.put_u32(i as u32);
                    self.put_f64(*x);
                }
            }
        } else {
            self.put_u8(0);
            self.put_f64_dense(v);
        }
    }

    /// A u32 vector, sparse when that is smaller (same scheme as
    /// [`ByteWriter::put_f64_vec`]).
    pub fn put_u32_vec(&mut self, v: &[u32]) {
        let nnz = v.iter().filter(|x| **x != 0).count();
        if nnz * 8 < v.len() * 4 {
            self.put_u8(1);
            self.put_u32(v.len() as u32);
            self.put_u32(nnz as u32);
            for (i, x) in v.iter().enumerate() {
                if *x != 0 {
                    self.put_u32(i as u32);
                    self.put_u32(*x);
                }
            }
        } else {
            self.put_u8(0);
            self.put_u32(v.len() as u32);
            for x in v {
                self.put_u32(*x);
            }
        }
    }

    /// An f32 vector, sparse when that is smaller.
    pub fn put_f32_vec(&mut self, v: &[f32]) {
        let nnz = v.iter().filter(|x| x.to_bits() != 0).count();
        if nnz * 8 < v.len() * 4 {
            self.put_u8(1);
            self.put_u32(v.len() as u32);
            self.put_u32(nnz as u32);
            for (i, x) in v.iter().enumerate() {
                if x.to_bits() != 0 {
                    self.put_u32(i as u32);
                    self.put_f32(*x);
                }
            }
        } else {
            self.put_u8(0);
            self.put_u32(v.len() as u32);
            for x in v {
                self.put_f32(*x);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// Cursor over a chunk payload; every accessor checks bounds, so corrupt
/// lengths surface as `FormatError`, never a panic or a wild allocation.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Starts reading at the front of `buf`.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the whole payload was consumed (decoders check this to
    /// reject trailing garbage).
    #[must_use]
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> FormatResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(FormatError("payload truncated"));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub fn get_u8(&mut self) -> FormatResult<u8> {
        Ok(self.take(1)?[0])
    }

    pub fn get_u16(&mut self) -> FormatResult<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    pub fn get_u32(&mut self) -> FormatResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn get_u64(&mut self) -> FormatResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn get_f64(&mut self) -> FormatResult<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    pub fn get_f32(&mut self) -> FormatResult<f32> {
        Ok(f32::from_bits(self.get_u32()?))
    }

    /// Length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> FormatResult<String> {
        let len = self.get_u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| FormatError("invalid UTF-8 in string"))
    }

    /// Checks that a declared element count fits in the remaining bytes
    /// (at `elem_size` bytes each) before allocating for it.
    fn checked_len(&self, count: u32, elem_size: usize) -> FormatResult<usize> {
        let count = count as usize;
        if count.saturating_mul(elem_size) > self.remaining() {
            return Err(FormatError("declared count exceeds payload size"));
        }
        Ok(count)
    }

    /// Counterpart of [`ByteWriter::put_f64_dense`].
    pub fn get_f64_dense(&mut self) -> FormatResult<Vec<f64>> {
        let n = self.get_u32()?;
        let n = self.checked_len(n, 8)?;
        // One bounds check for the whole vector, then a straight-line
        // conversion loop the compiler vectorizes.
        let bytes = self.take(n * 8)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().unwrap())))
            .collect())
    }

    /// Counterpart of [`ByteWriter::put_f64_vec`].
    pub fn get_f64_vec(&mut self) -> FormatResult<Vec<f64>> {
        match self.get_u8()? {
            0 => self.get_f64_dense(),
            1 => {
                let len = self.get_u32()? as usize;
                if len > MAX_CHUNK_PAYLOAD as usize {
                    return Err(FormatError("sparse vector length out of range"));
                }
                let nnz = self.get_u32()?;
                let nnz = self.checked_len(nnz, 12)?;
                let mut out = vec![0.0f64; len];
                let mut prev: Option<usize> = None;
                for _ in 0..nnz {
                    let i = self.get_u32()? as usize;
                    if i >= len || prev.is_some_and(|p| i <= p) {
                        return Err(FormatError("sparse index out of order or range"));
                    }
                    out[i] = self.get_f64()?;
                    prev = Some(i);
                }
                Ok(out)
            }
            _ => Err(FormatError("unknown vector encoding tag")),
        }
    }

    /// Counterpart of [`ByteWriter::put_u32_vec`].
    pub fn get_u32_vec(&mut self) -> FormatResult<Vec<u32>> {
        match self.get_u8()? {
            0 => {
                let n = self.get_u32()?;
                let n = self.checked_len(n, 4)?;
                let bytes = self.take(n * 4)?;
                Ok(bytes
                    .chunks_exact(4)
                    .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
                    .collect())
            }
            1 => {
                let len = self.get_u32()? as usize;
                if len > MAX_CHUNK_PAYLOAD as usize {
                    return Err(FormatError("sparse vector length out of range"));
                }
                let nnz = self.get_u32()?;
                let nnz = self.checked_len(nnz, 8)?;
                let mut out = vec![0u32; len];
                let mut prev: Option<usize> = None;
                for _ in 0..nnz {
                    let i = self.get_u32()? as usize;
                    if i >= len || prev.is_some_and(|p| i <= p) {
                        return Err(FormatError("sparse index out of order or range"));
                    }
                    out[i] = self.get_u32()?;
                    prev = Some(i);
                }
                Ok(out)
            }
            _ => Err(FormatError("unknown vector encoding tag")),
        }
    }

    /// Counterpart of [`ByteWriter::put_f32_vec`].
    pub fn get_f32_vec(&mut self) -> FormatResult<Vec<f32>> {
        match self.get_u8()? {
            0 => {
                let n = self.get_u32()?;
                let n = self.checked_len(n, 4)?;
                let bytes = self.take(n * 4)?;
                Ok(bytes
                    .chunks_exact(4)
                    .map(|c| f32::from_bits(u32::from_le_bytes(c.try_into().unwrap())))
                    .collect())
            }
            1 => {
                let len = self.get_u32()? as usize;
                if len > MAX_CHUNK_PAYLOAD as usize {
                    return Err(FormatError("sparse vector length out of range"));
                }
                let nnz = self.get_u32()?;
                let nnz = self.checked_len(nnz, 8)?;
                let mut out = vec![0.0f32; len];
                let mut prev: Option<usize> = None;
                for _ in 0..nnz {
                    let i = self.get_u32()? as usize;
                    if i >= len || prev.is_some_and(|p| i <= p) {
                        return Err(FormatError("sparse index out of order or range"));
                    }
                    out[i] = self.get_f32()?;
                    prev = Some(i);
                }
                Ok(out)
            }
            _ => Err(FormatError("unknown vector encoding tag")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard test vectors for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn crc32_incremental_equals_oneshot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut c = Crc32::new();
        c.update(&data[..10]);
        c.update(&data[10..]);
        assert_eq!(c.finish(), crc32(data));
    }

    #[test]
    fn crc32_detects_every_single_byte_flip() {
        let data: Vec<u8> = (0..255u8).collect();
        let clean = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut bad = data.clone();
                bad[i] ^= 1 << bit;
                assert_ne!(crc32(&bad), clean, "flip at byte {i} bit {bit} undetected");
            }
        }
    }

    #[test]
    fn scalar_roundtrip() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u16(65_000);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_f64(-0.0);
        w.put_f32(f32::MIN_POSITIVE);
        w.put_str("naïve ☃");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u16().unwrap(), 65_000);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.get_f32().unwrap(), f32::MIN_POSITIVE);
        assert_eq!(r.get_str().unwrap(), "naïve ☃");
        assert!(r.is_exhausted());
    }

    #[test]
    fn vectors_roundtrip_dense_and_sparse() {
        // Sparse case (mostly zeros) and dense case, with tricky floats.
        let sparse = {
            let mut v = vec![0.0f64; 500];
            v[3] = 1.5e-300;
            v[499] = -0.0; // bit pattern is non-zero → must survive
            v[100] = f64::MAX;
            v
        };
        let dense: Vec<f64> = (0..64).map(|i| i as f64 + 0.25).collect();
        for v in [sparse, dense, vec![], vec![0.0; 9]] {
            let mut w = ByteWriter::new();
            w.put_f64_vec(&v);
            let bytes = w.into_bytes();
            let mut r = ByteReader::new(&bytes);
            let back = r.get_f64_vec().unwrap();
            assert_eq!(back.len(), v.len());
            for (a, b) in back.iter().zip(&v) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            assert!(r.is_exhausted());
        }
    }

    #[test]
    fn u32_and_f32_vectors_roundtrip() {
        let mut sparse = vec![0u32; 2_000];
        sparse[1999] = 42;
        for v in [sparse, (0..50).collect::<Vec<u32>>(), vec![]] {
            let mut w = ByteWriter::new();
            w.put_u32_vec(&v);
            let bytes = w.into_bytes();
            assert_eq!(ByteReader::new(&bytes).get_u32_vec().unwrap(), v);
        }
        let mut fs = vec![0.0f32; 300];
        fs[7] = 3.25;
        let mut w = ByteWriter::new();
        w.put_f32_vec(&fs);
        let bytes = w.into_bytes();
        assert_eq!(ByteReader::new(&bytes).get_f32_vec().unwrap(), fs);
    }

    #[test]
    fn reader_rejects_truncation_and_bogus_counts() {
        let mut r = ByteReader::new(&[1, 2]);
        assert!(r.get_u32().is_err());

        // Dense f64 vector claiming 2^31 elements in a 12-byte payload.
        let mut w = ByteWriter::new();
        w.put_u8(0);
        w.put_u32(1 << 31);
        w.put_u64(0);
        let bytes = w.into_bytes();
        assert!(ByteReader::new(&bytes).get_f64_vec().is_err());

        // Sparse vector with an out-of-range index.
        let mut w = ByteWriter::new();
        w.put_u8(1);
        w.put_u32(4); // len
        w.put_u32(1); // nnz
        w.put_u32(9); // index 9 >= len 4
        w.put_f64(1.0);
        let bytes = w.into_bytes();
        assert!(ByteReader::new(&bytes).get_f64_vec().is_err());

        // Unknown tag.
        assert!(ByteReader::new(&[9]).get_f64_vec().is_err());
    }
}
