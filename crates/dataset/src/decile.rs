//! BS load-decile categorization (§4.1).
//!
//! "We compute the distribution of total traffic served by each BS during
//! the whole measurement time, and separate BSs based on the decile they
//! pertain to. Thus, each set C_i includes 10% of the BSs, with growing
//! mobile traffic demands from the first decile to the last one."

/// Assigns each BS its load decile (0 = least loaded 10%, 9 = busiest)
/// from total measured traffic volumes.
///
/// Ties are broken by BS index, so every decile gets `⌈n/10⌉` or `⌊n/10⌋`
/// stations even with duplicated totals.
#[must_use]
pub fn assign_deciles(total_volume_per_bs: &[f64]) -> Vec<u8> {
    let n = total_volume_per_bs.len();
    if n == 0 {
        return Vec::new();
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|a, b| {
        total_volume_per_bs[*a]
            .total_cmp(&total_volume_per_bs[*b])
            .then(a.cmp(b))
    });
    let mut deciles = vec![0u8; n];
    for (rank, bs) in order.into_iter().enumerate() {
        deciles[bs] = ((rank * 10) / n) as u8;
    }
    deciles
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deciles_ordered_by_volume() {
        let volumes: Vec<f64> = (0..100).map(|i| f64::from(i) * 10.0).collect();
        let d = assign_deciles(&volumes);
        assert_eq!(d[0], 0);
        assert_eq!(d[99], 9);
        assert_eq!(d[55], 5);
        // Each decile holds exactly 10 BSs.
        for dec in 0..10u8 {
            assert_eq!(d.iter().filter(|x| **x == dec).count(), 10);
        }
    }

    #[test]
    fn deciles_balanced_with_ties() {
        let volumes = vec![1.0; 30];
        let d = assign_deciles(&volumes);
        for dec in 0..10u8 {
            assert_eq!(d.iter().filter(|x| **x == dec).count(), 3, "decile {dec}");
        }
    }

    #[test]
    fn small_populations_spread() {
        let volumes = vec![3.0, 1.0, 2.0];
        let d = assign_deciles(&volumes);
        // Least loaded gets the lowest decile.
        assert!(d[1] < d[2]);
        assert!(d[2] < d[0]);
    }

    #[test]
    fn empty_input() {
        assert!(assign_deciles(&[]).is_empty());
    }
}
