//! # mtd-dataset — the paper's measurement dataset abstraction
//!
//! Mirrors §3.2–3.3 of the paper: raw per-flow measurements are reduced to
//! privacy-preserving per-(service, BS-group, day) statistics —
//!
//! - per-minute session arrival counts `w_s^{c,m}` (kept per BS,
//!   aggregated over services, for the Fig 3 analysis),
//! - log-binned PDFs of per-session traffic volume `F_s^{c,t}(x)`,
//! - discretized duration–volume pairs `v_s^{c,t}(d)`,
//!
//! and re-aggregated over arbitrary subsets of BSs and days with the
//! weighted-average estimators of Eq. (1) (pairs) and Eq. (2) (PDF
//! mixtures).
//!
//! One deliberate refinement over a naive per-(service, BS, day) store:
//! cells are keyed by *BS group* — the (load-decile, region, city, RAT)
//! combination — because every slice the paper analyzes (§4.4: day type,
//! region, city, RAT; §4.1: load decile) is a union of such groups. This
//! keeps memory bounded while exercising the identical estimators.
//!
//! Building is two-pass: BS load deciles depend on total measured traffic,
//! so pass 1 measures per-BS volume totals, then pass 2 (an identical,
//! deterministic re-run of the engine) fills the cells. Determinism of the
//! engine makes the two passes see exactly the same traffic.

pub mod accum;
pub mod chunk;
pub mod dataset;
pub mod decile;
pub mod format;
mod json;
pub mod record;
pub mod shares;
pub mod store;

pub use accum::{ExactCell, MinuteRowQ, ShardAccumulator, SignalRowQ, VolumeTotalsQ};
pub use dataset::{group_table, CellKey, CellMap, Dataset, GroupKey, SignalingPlane, SliceFilter};
pub use record::{CellStats, PairPoint};
pub use shares::SharesAccumulator;
pub mod window;

pub use store::{
    write_atomic, DatasetAssembler, DatasetStream, SignalBlock, StoreError, StoreReport,
    StoreWriter, StreamedChunk,
};
pub use window::{read_window, read_window_from_reader};
