//! The dataset container and its Eq. (1)/(2) aggregation queries.

use crate::decile::assign_deciles;
use crate::record::{duration_grid, volume_grid, CellStats, PairPoint};
use mtd_math::histogram::{BinnedPdf, LogGrid};
use mtd_math::{MathError, Result};
use mtd_netsim::engine::Engine;
use mtd_netsim::geo::{Region, Topology};
use mtd_netsim::ids::Rat;
use mtd_netsim::services::ServiceCatalog;
use mtd_netsim::session::SessionObservation;
use mtd_netsim::time::{DayType, MINUTES_PER_DAY};
use mtd_netsim::ScenarioConfig;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The (load-decile, region, city, RAT) combination keying a BS group.
///
/// Every slice the paper analyzes is a union of these groups, so keeping
/// cells at group granularity loses nothing for the §4 analyses while
/// bounding memory (see the crate docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GroupKey {
    pub decile: u8,
    pub region: Region,
    pub city: Option<u8>,
    pub rat: Rat,
}

/// A slice of the dataset: `None` fields match everything.
///
/// Mirrors the paper's §4.4 breakdowns — day type, region, city, RAT —
/// plus the §4.1 load decile.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SliceFilter {
    pub day_type: Option<DayType>,
    pub region: Option<Region>,
    pub city: Option<u8>,
    pub rat: Option<Rat>,
    pub decile: Option<u8>,
}

impl SliceFilter {
    /// Matches everything (the "all BSs and days" aggregate of §3.3).
    #[must_use]
    pub fn all() -> SliceFilter {
        SliceFilter::default()
    }

    /// Restricts to one day type.
    #[must_use]
    pub fn day(day_type: DayType) -> SliceFilter {
        SliceFilter {
            day_type: Some(day_type),
            ..SliceFilter::default()
        }
    }

    /// Restricts to one region.
    #[must_use]
    pub fn region(region: Region) -> SliceFilter {
        SliceFilter {
            region: Some(region),
            ..SliceFilter::default()
        }
    }

    /// Restricts to one city.
    #[must_use]
    pub fn city(city: u8) -> SliceFilter {
        SliceFilter {
            city: Some(city),
            ..SliceFilter::default()
        }
    }

    /// Restricts to one RAT.
    #[must_use]
    pub fn rat(rat: Rat) -> SliceFilter {
        SliceFilter {
            rat: Some(rat),
            ..SliceFilter::default()
        }
    }

    /// Restricts to one load decile.
    #[must_use]
    pub fn decile(decile: u8) -> SliceFilter {
        SliceFilter {
            decile: Some(decile),
            ..SliceFilter::default()
        }
    }

    fn matches_group(&self, g: &GroupKey) -> bool {
        self.region.is_none_or(|r| g.region == r)
            && self.city.is_none_or(|c| g.city == Some(c))
            && self.rat.is_none_or(|r| g.rat == r)
            && self.decile.is_none_or(|d| g.decile == d)
    }

    fn matches_day(&self, day: u32) -> bool {
        self.day_type.is_none_or(|t| DayType::of_day(day) == t)
    }
}

/// The aggregated measurement dataset of a synthetic campaign.
///
/// Fields are `pub(crate)` so the sibling `store` module can encode and
/// rebuild datasets without going through serde (the binary format needs
/// direct, bit-exact access to every component).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    pub(crate) volume_grid: LogGrid,
    pub(crate) duration_grid: LogGrid,
    pub(crate) service_names: Vec<String>,
    pub(crate) groups: Vec<GroupKey>,
    pub(crate) group_of_bs: Vec<u16>,
    pub(crate) decile_of_bs: Vec<u8>,
    pub(crate) bs_total_volume_mb: Vec<f64>,
    /// Cells keyed by (service, group index, day). Ordered so that every
    /// aggregation sums cells in a deterministic order (hash-map iteration
    /// order would perturb float sums by a ULP between runs). JSON cannot
    /// represent tuple-keyed maps, so serde goes through a keyed vector.
    #[serde(with = "cell_map_serde")]
    pub(crate) cells: CellMap,
    /// Per-BS, per-minute session counts over all services (`w^{c,m}`).
    pub(crate) minute_counts: Vec<Vec<u32>>,
    /// Per-BS, per-minute traffic volume over all services (MB, attributed
    /// to the session fragment's start minute) — the BS-level aggregate of
    /// the paper's Fig 1 taxonomy, used by the extension analysis.
    pub(crate) minute_volume_mb: Vec<Vec<f32>>,
    pub(crate) n_days: u32,
    /// Per-BS, per-minute control-plane event counts — the second
    /// traffic plane of the control-plane-coupling stress scenario.
    /// `None` (the default) for every dataset built without
    /// `stress.control_plane`, which keeps the binary store emitting
    /// format v1 bytes for legacy datasets.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub(crate) signaling: Option<SignalingPlane>,
}

/// The control-plane traffic plane: per-BS, per-campaign-minute counts
/// of attach, handover-in, and paging events, derived from session
/// arrivals and mobility by the engine's signaling choreography. Rows
/// have the same `n_days × 1440` length as the user-plane minute rows.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SignalingPlane {
    /// Attach events per BS per minute.
    pub attach: Vec<Vec<u32>>,
    /// Handover-in events per BS per minute.
    pub handover: Vec<Vec<u32>>,
    /// Paging events per BS per minute.
    pub paging: Vec<Vec<u32>>,
}

impl SignalingPlane {
    /// An all-zero plane for `n_bs` stations and `row_len` minutes.
    #[must_use]
    pub fn zeroed(n_bs: usize, row_len: usize) -> SignalingPlane {
        SignalingPlane {
            attach: vec![vec![0; row_len]; n_bs],
            handover: vec![vec![0; row_len]; n_bs],
            paging: vec![vec![0; row_len]; n_bs],
        }
    }

    /// Number of BS rows.
    #[must_use]
    pub fn n_bs(&self) -> usize {
        self.attach.len()
    }

    /// Total events of each kind: `(attach, handover, paging)`.
    #[must_use]
    pub fn totals(&self) -> (u64, u64, u64) {
        let sum = |rows: &Vec<Vec<u32>>| {
            rows.iter()
                .flat_map(|r| r.iter())
                .map(|c| u64::from(*c))
                .sum()
        };
        (sum(&self.attach), sum(&self.handover), sum(&self.paging))
    }

    /// Per-minute event total across all BSs and kinds for one minute
    /// index range, used by the breakage battery's coupling checks.
    #[must_use]
    pub fn minute_totals(&self) -> Vec<u64> {
        let row_len = self.attach.first().map_or(0, Vec::len);
        let mut totals = vec![0u64; row_len];
        for rows in [&self.attach, &self.handover, &self.paging] {
            for row in rows {
                for (t, c) in totals.iter_mut().zip(row) {
                    *t += u64::from(*c);
                }
            }
        }
        totals
    }
}

/// Cell key: (service, group index, day).
pub type CellKey = (u16, u16, u32);
/// The ordered cell store.
pub type CellMap = std::collections::BTreeMap<CellKey, CellStats>;

/// Builds the interned group table for a topology: the distinct
/// [`GroupKey`]s in first-appearance (station) order, plus each BS's
/// group index. Shared by [`Dataset::build`] and the campaign runner so
/// both derive identical group numbering from identical deciles.
#[must_use]
pub fn group_table(
    stations: &[mtd_netsim::geo::BaseStation],
    decile_of_bs: &[u8],
) -> (Vec<GroupKey>, Vec<u16>) {
    let mut groups: Vec<GroupKey> = Vec::new();
    let mut group_index: HashMap<GroupKey, u16> = HashMap::new();
    let mut group_of_bs = Vec::with_capacity(stations.len());
    for (i, s) in stations.iter().enumerate() {
        let key = GroupKey {
            decile: decile_of_bs[i],
            region: s.region,
            city: s.city,
            rat: s.rat,
        };
        let idx = *group_index.entry(key).or_insert_with(|| {
            groups.push(key);
            (groups.len() - 1) as u16
        });
        group_of_bs.push(idx);
    }
    (groups, group_of_bs)
}

/// Serializes the tuple-keyed cell map as a vector of entries.
mod cell_map_serde {
    use super::{CellKey, CellMap, CellStats};
    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    pub fn serialize<S: Serializer>(map: &CellMap, ser: S) -> Result<S::Ok, S::Error> {
        let entries: Vec<(&CellKey, &CellStats)> = map.iter().collect();
        entries.serialize(ser)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(de: D) -> Result<CellMap, D::Error> {
        let entries: Vec<(CellKey, CellStats)> = Vec::deserialize(de)?;
        Ok(entries.into_iter().collect())
    }
}

impl Dataset {
    /// Builds the dataset by running the engine twice (see crate docs):
    /// once to measure per-BS totals for decile assignment, once to fill
    /// the cells. Both passes are deterministic and identical.
    ///
    /// Accumulation goes through the fixed-point [`crate::accum`] sinks —
    /// the same pipeline the sharded campaign runner uses — so a
    /// monolithic build and a sharded campaign produce byte-identical
    /// stores by construction.
    #[must_use]
    pub fn build(
        config: &ScenarioConfig,
        topology: &Topology,
        catalog: &ServiceCatalog,
    ) -> Dataset {
        let _span = mtd_telemetry::span!("dataset.build");
        let engine = Engine::new(config, topology, catalog);
        let threads = mtd_par::threads();

        // Pass 1: totals → deciles. (The parallel runner is bit-identical
        // to the sequential one.)
        let mut pass1 = crate::accum::VolumeTotalsQ::new(topology.len());
        {
            let _span = mtd_telemetry::span!("pass1_totals");
            engine.run_parallel(&mut pass1, threads);
        }
        let totals_mb = pass1.totals_mb();
        let decile_of_bs = assign_deciles(&totals_mb);
        let (groups, group_of_bs) = group_table(topology.stations(), &decile_of_bs);

        // Pass 2: identical run fills cells.
        let mut pass2 = crate::accum::ShardAccumulator::new(
            volume_grid(),
            duration_grid(),
            group_of_bs.clone(),
            config.days,
        );
        if config.stress.control_plane {
            pass2.enable_signaling();
        }
        {
            let _span = mtd_telemetry::span!("pass2_fill");
            engine.run_parallel(&mut pass2, threads);
        }
        let cells = pass2.finalize_cells();
        let (minute_counts, minute_volume_mb) = pass2.finalize_minutes(topology.len());
        let signaling = pass2.finalize_signaling(topology.len());
        let dataset = Dataset {
            volume_grid: volume_grid(),
            duration_grid: duration_grid(),
            service_names: catalog.services().iter().map(|s| s.name.clone()).collect(),
            groups,
            group_of_bs,
            decile_of_bs,
            bs_total_volume_mb: totals_mb,
            cells,
            minute_counts,
            minute_volume_mb,
            n_days: config.days,
            signaling,
        };
        mtd_telemetry::gauge_set("dataset.cells", dataset.cells.len() as f64);
        dataset
    }

    /// Records one observation (used by the pass-2 sink; public for
    /// feeding externally-joined probe data in tests).
    pub fn record_observation(&mut self, obs: &SessionObservation) {
        let bs = obs.bs.0 as usize;
        let day = obs.start.day;
        if day >= self.n_days {
            // Sessions spilling past the campaign end are not measured.
            mtd_telemetry::count("dataset.observations.spilled", 1);
            return;
        }
        let minute = (day * MINUTES_PER_DAY + obs.start.minute_of_day()) as usize;
        self.minute_counts[bs][minute] += 1;
        self.minute_volume_mb[bs][minute] += obs.volume_mb as f32;

        let group = self.group_of_bs[bs];
        let key = (obs.service.0, group, day);
        let cell = self
            .cells
            .entry(key)
            .or_insert_with(|| CellStats::new(self.volume_grid, self.duration_grid.bins()));
        cell.record(obs.volume_mb, obs.duration_s, &self.duration_grid);
    }

    /// The volume grid shared by all cells.
    #[must_use]
    pub fn volume_grid(&self) -> &LogGrid {
        &self.volume_grid
    }

    /// The duration grid shared by all cells.
    #[must_use]
    pub fn duration_grid(&self) -> &LogGrid {
        &self.duration_grid
    }

    /// Number of services.
    #[must_use]
    pub fn n_services(&self) -> usize {
        self.service_names.len()
    }

    /// Number of base stations.
    #[must_use]
    pub fn n_bs(&self) -> usize {
        self.group_of_bs.len()
    }

    /// Number of measured days.
    #[must_use]
    pub fn n_days(&self) -> u32 {
        self.n_days
    }

    /// The control-plane traffic plane, when the dataset was built with
    /// `stress.control_plane` enabled.
    #[must_use]
    pub fn signaling(&self) -> Option<&SignalingPlane> {
        self.signaling.as_ref()
    }

    /// Attaches (or clears) the control-plane plane — used by the store
    /// decoder and window slicer, which rebuild datasets field by field.
    pub fn set_signaling(&mut self, plane: Option<SignalingPlane>) {
        self.signaling = plane;
    }

    /// Service name by index.
    #[must_use]
    pub fn service_name(&self, service: u16) -> &str {
        &self.service_names[service as usize]
    }

    /// Service index by name.
    #[must_use]
    pub fn service_by_name(&self, name: &str) -> Option<u16> {
        self.service_names
            .iter()
            .position(|n| n == name)
            .map(|i| i as u16)
    }

    /// Load decile of a BS.
    #[must_use]
    pub fn decile_of_bs(&self, bs: usize) -> u8 {
        self.decile_of_bs[bs]
    }

    /// Total measured volume of a BS over the whole campaign (MB).
    #[must_use]
    pub fn bs_total_volume(&self, bs: usize) -> f64 {
        self.bs_total_volume_mb[bs]
    }

    /// Iterates cells of a service matching a filter.
    fn matching_cells<'a>(
        &'a self,
        service: u16,
        filter: &'a SliceFilter,
    ) -> impl Iterator<Item = &'a CellStats> + 'a {
        self.cells.iter().filter_map(move |((s, g, d), cell)| {
            (*s == service
                && filter.matches_group(&self.groups[*g as usize])
                && filter.matches_day(*d))
            .then_some(cell)
        })
    }

    /// Total sessions `Σ w_s^{c,t}` of a service over a slice.
    #[must_use]
    pub fn sessions(&self, service: u16, filter: &SliceFilter) -> f64 {
        self.matching_cells(service, filter)
            .map(|c| c.sessions)
            .sum()
    }

    /// Total traffic (MB) of a service over a slice.
    #[must_use]
    pub fn traffic(&self, service: u16, filter: &SliceFilter) -> f64 {
        self.matching_cells(service, filter)
            .map(|c| c.traffic_mb)
            .sum()
    }

    /// The Eq. (2) mixture PDF `F_s(x)` of a service over a slice.
    ///
    /// Errors when the slice holds no sessions for the service.
    pub fn volume_pdf(&self, service: u16, filter: &SliceFilter) -> Result<BinnedPdf> {
        let mut merged = CellStats::new(self.volume_grid, self.duration_grid.bins());
        let mut any = false;
        for cell in self.matching_cells(service, filter) {
            merged.merge(cell)?;
            any = true;
        }
        if !any {
            return Err(MathError::EmptyInput("volume_pdf: empty slice"));
        }
        merged.volume_hist.to_pdf()
    }

    /// The Eq. (1) weighted duration–volume pairs `v_s(d)` over a slice.
    ///
    /// Per-bin means are weighted by per-bin session counts (the exact
    /// conditional mean; the paper's Eq. 1 weights whole cells by
    /// `w_s^{c,t}`, which coincides when bins are populated
    /// proportionally).
    #[must_use]
    pub fn duration_pairs(&self, service: u16, filter: &SliceFilter) -> Vec<PairPoint> {
        let mut merged = CellStats::new(self.volume_grid, self.duration_grid.bins());
        for cell in self.matching_cells(service, filter) {
            merged.merge(cell).expect("cells share grids");
        }
        merged.pairs(&self.duration_grid)
    }

    /// Weighted within-duration-bin dispersion of `log₁₀(volume)` for a
    /// service over a slice (bins with ≥ 5 sessions). This quantifies the
    /// scatter around `v_s(d)` that the Eq. (1) means erase; `mtd-core`
    /// uses it to reproduce realistic per-session throughput variability.
    #[must_use]
    pub fn pair_dispersion(&self, service: u16, filter: &SliceFilter) -> f64 {
        let mut merged = CellStats::new(self.volume_grid, self.duration_grid.bins());
        for cell in self.matching_cells(service, filter) {
            merged.merge(cell).expect("cells share grids");
        }
        merged.pair_dispersion(5.0)
    }

    /// Per-minute arrival count samples `w^{c,m}` (all services) over all
    /// BSs in `decile` and all days — the raw material of Fig 3.
    #[must_use]
    pub fn arrival_counts(&self, decile: u8) -> Vec<u32> {
        let mut out = Vec::new();
        for (bs, counts) in self.minute_counts.iter().enumerate() {
            if self.decile_of_bs[bs] == decile {
                out.extend_from_slice(counts);
            }
        }
        out
    }

    /// Arrival count samples restricted to peak or off-peak minutes.
    #[must_use]
    pub fn arrival_counts_windowed(&self, decile: u8, peak: bool) -> Vec<u32> {
        let mut out = Vec::new();
        for (bs, counts) in self.minute_counts.iter().enumerate() {
            if self.decile_of_bs[bs] != decile {
                continue;
            }
            for (i, c) in counts.iter().enumerate() {
                let minute_of_day = (i as u32) % MINUTES_PER_DAY;
                if mtd_netsim::time::is_peak_minute(minute_of_day) == peak {
                    out.push(*c);
                }
            }
        }
        out
    }

    /// Per-minute traffic volume series of one BS (MB per minute, whole
    /// campaign) — the BS-level aggregate view.
    #[must_use]
    pub fn bs_minute_volumes(&self, bs: usize) -> &[f32] {
        &self.minute_volume_mb[bs]
    }

    /// Session and traffic shares of every service over the whole dataset
    /// (the Table 1 columns). Returns `(name, session_share, traffic_share)`
    /// sorted by descending session share.
    #[must_use]
    pub fn shares(&self) -> Vec<(String, f64, f64)> {
        let all = SliceFilter::all();
        let total_sessions: f64 = (0..self.n_services())
            .map(|s| self.sessions(s as u16, &all))
            .sum();
        let total_traffic: f64 = (0..self.n_services())
            .map(|s| self.traffic(s as u16, &all))
            .sum();
        let mut rows: Vec<(String, f64, f64)> = (0..self.n_services())
            .map(|s| {
                (
                    self.service_names[s].clone(),
                    self.sessions(s as u16, &all) / total_sessions.max(1e-300),
                    self.traffic(s as u16, &all) / total_traffic.max(1e-300),
                )
            })
            .collect();
        rows.sort_by(|a, b| b.1.total_cmp(&a.1));
        rows
    }

    /// All realized groups (for diagnostics).
    #[must_use]
    pub fn groups(&self) -> &[GroupKey] {
        &self.groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtd_netsim::geo::Topology;
    use mtd_netsim::services::ServiceCatalog;

    fn build_small() -> (Dataset, ServiceCatalog) {
        let config = ScenarioConfig::small_test();
        let topology = Topology::generate(config.n_bs, config.seed);
        let catalog = ServiceCatalog::paper();
        (Dataset::build(&config, &topology, &catalog), catalog)
    }

    #[test]
    fn build_produces_cells_and_counts() {
        let (ds, catalog) = build_small();
        assert_eq!(ds.n_services(), catalog.len());
        let fb = ds.service_by_name("Facebook").unwrap();
        let sessions = ds.sessions(fb, &SliceFilter::all());
        assert!(sessions > 500.0, "facebook sessions {sessions}");
        assert!(ds.traffic(fb, &SliceFilter::all()) > 0.0);
    }

    #[test]
    fn shares_match_table1_ordering() {
        let (ds, _) = build_small();
        let shares = ds.shares();
        assert_eq!(shares[0].0, "Facebook");
        // Session shares sum to 1.
        let total: f64 = shares.iter().map(|(_, s, _)| s).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Facebook ≈ 36.5% of sessions.
        assert!(
            (shares[0].1 - 0.365).abs() < 0.03,
            "fb share {}",
            shares[0].1
        );
    }

    #[test]
    fn volume_pdf_is_normalized_and_service_specific() {
        let (ds, _) = build_small();
        let nf = ds.service_by_name("Netflix").unwrap();
        let fb = ds.service_by_name("Facebook").unwrap();
        let pdf_nf = ds.volume_pdf(nf, &SliceFilter::all()).unwrap();
        let pdf_fb = ds.volume_pdf(fb, &SliceFilter::all()).unwrap();
        let mass: f64 = pdf_nf.density().iter().sum::<f64>() * pdf_nf.grid().bin_width();
        assert!((mass - 1.0).abs() < 1e-9);
        // Netflix sessions are much larger than Facebook's on average.
        assert!(pdf_nf.mean_log10() > pdf_fb.mean_log10() + 0.5);
    }

    #[test]
    fn duration_pairs_grow_with_duration() {
        let (ds, _) = build_small();
        let nf = ds.service_by_name("Netflix").unwrap();
        let pairs = ds.duration_pairs(nf, &SliceFilter::all());
        assert!(pairs.len() > 5, "pairs {}", pairs.len());
        // Volume grows with duration (β > 0): compare first vs last
        // well-populated points.
        let heavy: Vec<&PairPoint> = pairs.iter().filter(|p| p.weight >= 5.0).collect();
        assert!(heavy.len() >= 3);
        assert!(heavy.last().unwrap().mean_volume_mb > heavy[0].mean_volume_mb);
    }

    #[test]
    fn slices_partition_sessions() {
        let (ds, _) = build_small();
        let fb = ds.service_by_name("Facebook").unwrap();
        let all = ds.sessions(fb, &SliceFilter::all());
        let work = ds.sessions(fb, &SliceFilter::day(DayType::Workday));
        let wend = ds.sessions(fb, &SliceFilter::day(DayType::Weekend));
        assert!((work + wend - all).abs() < 1e-6);
        let lte = ds.sessions(fb, &SliceFilter::rat(Rat::Lte));
        let nr = ds.sessions(fb, &SliceFilter::rat(Rat::Nr));
        assert!((lte + nr - all).abs() < 1e-6);
    }

    #[test]
    fn deciles_cover_all_bs() {
        let (ds, _) = build_small();
        let n = ds.n_bs();
        let mut counted = 0;
        for d in 0..10u8 {
            counted += (0..n).filter(|bs| ds.decile_of_bs(*bs) == d).count();
        }
        assert_eq!(counted, n);
    }

    #[test]
    fn higher_deciles_see_more_arrivals() {
        let (ds, _) = build_small();
        let mean = |d: u8| {
            let c = ds.arrival_counts(d);
            if c.is_empty() {
                return 0.0;
            }
            c.iter().map(|x| f64::from(*x)).sum::<f64>() / c.len() as f64
        };
        assert!(
            mean(9) > mean(0) * 2.0,
            "decile 9 {} vs 0 {}",
            mean(9),
            mean(0)
        );
    }

    #[test]
    fn peak_window_has_higher_counts() {
        let (ds, _) = build_small();
        let peak = ds.arrival_counts_windowed(9, true);
        let off = ds.arrival_counts_windowed(9, false);
        let m = |v: &[u32]| v.iter().map(|x| f64::from(*x)).sum::<f64>() / v.len() as f64;
        assert!(m(&peak) > 3.0 * m(&off));
    }

    #[test]
    fn observations_attribute_to_their_start_day_across_midnight() {
        use mtd_netsim::ids::{BsId, ServiceId, SessionId};
        use mtd_netsim::time::SimTime;

        let (mut ds, _) = build_small();
        let n_days = ds.n_days();
        assert!(n_days >= 2, "small_test scenario needs >= 2 days");
        let obs = |start: SimTime| SessionObservation {
            session: SessionId(1),
            bs: BsId(0),
            rat: Rat::Lte,
            service: ServiceId(0),
            start,
            duration_s: 120.0,
            volume_mb: 1.0,
            transient: false,
            segment_index: 0,
        };

        // A fragment starting in the last minute of day 0 (even one whose
        // duration runs past midnight) counts in minute 1439 of day 0.
        let last_minute = (MINUTES_PER_DAY - 1) as usize;
        let before = ds.minute_counts[0][last_minute];
        ds.record_observation(&obs(SimTime::new(0, 86_399.5)));
        assert_eq!(ds.minute_counts[0][last_minute], before + 1);

        // A fragment starting just after midnight counts in minute 0 of
        // day 1 — the first slot of the next day's stripe.
        let day1_first = MINUTES_PER_DAY as usize;
        let before = ds.minute_counts[0][day1_first];
        ds.record_observation(&obs(SimTime::new(0, 86_400.5)));
        assert_eq!(ds.minute_counts[0][day1_first], before + 1);

        // Spill past the campaign end is dropped, not mis-attributed.
        let snapshot = ds.minute_counts[0].clone();
        let day0_cells = ds.cells.len();
        ds.record_observation(&obs(SimTime::new(n_days - 1, 86_400.5)));
        assert_eq!(ds.minute_counts[0], snapshot);
        assert_eq!(ds.cells.len(), day0_cells);
    }

    #[test]
    fn empty_slice_errors() {
        let (ds, _) = build_small();
        let nf = ds.service_by_name("Netflix").unwrap();
        // City 200 does not exist.
        assert!(ds.volume_pdf(nf, &SliceFilter::city(200)).is_err());
    }

    #[test]
    fn pdf_slices_are_similar_across_day_types() {
        // §4.4: per-service statistics barely differ between workdays and
        // weekends (the generator is day-type-invariant, the estimator
        // must not introduce artificial differences).
        let (ds, _) = build_small();
        let fb = ds.service_by_name("Facebook").unwrap();
        let work = ds
            .volume_pdf(fb, &SliceFilter::day(DayType::Workday))
            .unwrap();
        let wend = ds
            .volume_pdf(fb, &SliceFilter::day(DayType::Weekend))
            .unwrap();
        let d = mtd_math::emd::emd_same_grid(&work, &wend).unwrap();
        assert!(d < 0.05, "workday/weekend EMD {d}");
    }
}
