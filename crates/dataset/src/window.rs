//! Day-window slicing of stored datasets.
//!
//! The longitudinal-drift stress scenario re-fits the model registry per
//! time window; this module produces the per-window datasets by slicing
//! a stored campaign along the day axis *while streaming*, so a
//! multi-"year" campaign never has to materialize whole. A window
//! `[day0, day1)` keeps:
//!
//! - cells with `day ∈ [day0, day1)`, re-based to `day - day0`;
//! - minute (and signaling) row columns `[day0·1440, day1·1440)`;
//! - deciles and groups unchanged — deciles are a whole-campaign
//!   property, and keeping them fixed keeps group keys comparable
//!   across windows (windowed fits then differ only in the data, not
//!   in the grouping).

use crate::dataset::Dataset;
use crate::store::{DatasetAssembler, DatasetStream, StoreError, StoreReport, StreamedChunk};
use mtd_netsim::time::MINUTES_PER_DAY;
use std::io::Read;
use std::path::Path;

/// Reads the day window `[day0, day1)` of a stored binary dataset.
/// Returns the windowed dataset plus the stream's integrity report.
pub fn read_window(
    path: &Path,
    day0: u32,
    day1: u32,
) -> Result<(Dataset, StoreReport), StoreError> {
    let stream = DatasetStream::open(path)?;
    read_window_from_stream(stream, day0, day1)
}

/// [`read_window`] over any reader positioned at the start of a binary
/// store image (header included).
pub fn read_window_from_reader<R: Read>(
    reader: R,
    day0: u32,
    day1: u32,
) -> Result<(Dataset, StoreReport), StoreError> {
    let stream = DatasetStream::from_reader(reader)?;
    read_window_from_stream(stream, day0, day1)
}

fn read_window_from_stream<R: Read>(
    mut stream: DatasetStream<R>,
    day0: u32,
    day1: u32,
) -> Result<(Dataset, StoreReport), StoreError> {
    let n_days = stream.meta().n_days;
    if day0 >= day1 || day1 > n_days {
        return Err(StoreError::Inconsistent(format!(
            "window [{day0}, {day1}) out of range for a {n_days}-day dataset"
        )));
    }
    let mut meta = stream.meta().clone();
    meta.n_days = day1 - day0;
    let mut asm = DatasetAssembler::new(meta, false);
    let lo = (day0 * MINUTES_PER_DAY) as usize;
    let hi = (day1 * MINUTES_PER_DAY) as usize;
    while let Some(chunk) = stream.next_chunk() {
        let chunk = chunk?;
        let sliced = match chunk {
            StreamedChunk::Deciles(d) => StreamedChunk::Deciles(d),
            StreamedChunk::Cells(batch) => StreamedChunk::Cells(
                batch
                    .into_iter()
                    .filter(|((_, _, day), _)| (day0..day1).contains(day))
                    .map(|((s, g, day), stats)| ((s, g, day - day0), stats))
                    .collect(),
            ),
            StreamedChunk::Minutes(mut block) => {
                for row in &mut block.counts {
                    *row = row[lo..hi].to_vec();
                }
                for row in &mut block.volumes {
                    *row = row[lo..hi].to_vec();
                }
                StreamedChunk::Minutes(block)
            }
            StreamedChunk::Signaling(mut block) => {
                for rows in [&mut block.attach, &mut block.handover, &mut block.paging] {
                    for row in rows.iter_mut() {
                        *row = row[lo..hi].to_vec();
                    }
                }
                StreamedChunk::Signaling(block)
            }
        };
        asm.apply(sliced)?;
    }
    Ok((asm.finish()?, stream.report().clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::SliceFilter;
    use crate::store::encode_binary;
    use mtd_netsim::geo::Topology;
    use mtd_netsim::services::ServiceCatalog;
    use mtd_netsim::{ScenarioConfig, StressConfig};
    use std::io::Cursor;

    fn build(stress: StressConfig) -> Dataset {
        let config = ScenarioConfig {
            n_bs: 5,
            days: 3,
            arrival_scale: 0.05,
            stress,
            ..ScenarioConfig::small_test()
        };
        let topology = Topology::generate(config.n_bs, config.seed);
        Dataset::build(&config, &topology, &ServiceCatalog::paper())
    }

    #[test]
    fn full_window_reproduces_the_dataset_exactly() {
        let ds = build(StressConfig::default());
        let bytes = encode_binary(&ds, 1);
        let (back, report) = read_window_from_reader(Cursor::new(bytes), 0, 3).unwrap();
        assert!(report.is_clean(), "{}", report.to_json());
        assert_eq!(back, ds);
    }

    #[test]
    fn window_slices_days_minutes_and_signaling() {
        let ds = build(StressConfig {
            control_plane: true,
            ..StressConfig::default()
        });
        let bytes = encode_binary(&ds, 1);
        let (win, _) = read_window_from_reader(Cursor::new(bytes), 1, 3).unwrap();
        assert_eq!(win.n_days(), 2);
        // Cells: exactly the day-1..3 cells, re-based.
        for ((_, _, day), _) in win.cells.iter().map(|(k, v)| (*k, v)) {
            assert!(day < 2);
        }
        let expected: Vec<_> = ds
            .cells
            .iter()
            .filter(|((_, _, d), _)| (1..3).contains(d))
            .map(|((s, g, d), c)| ((*s, *g, d - 1), c.clone()))
            .collect();
        let got: Vec<_> = win.cells.iter().map(|(k, c)| (*k, c.clone())).collect();
        assert_eq!(got, expected);
        // Minute rows are the column slice.
        for bs in 0..ds.n_bs() {
            assert_eq!(win.minute_counts[bs], ds.minute_counts[bs][1440..3 * 1440]);
            assert_eq!(
                win.bs_minute_volumes(bs),
                &ds.bs_minute_volumes(bs)[1440..3 * 1440]
            );
        }
        // Signaling slices the same way.
        let (full, sliced) = (ds.signaling().unwrap(), win.signaling().unwrap());
        for bs in 0..ds.n_bs() {
            assert_eq!(sliced.attach[bs], full.attach[bs][1440..3 * 1440]);
            assert_eq!(sliced.paging[bs], full.paging[bs][1440..3 * 1440]);
        }
        // Estimators still work on the slice.
        let f = SliceFilter::all();
        assert!(win.sessions(0, &f) <= ds.sessions(0, &f));
    }

    #[test]
    fn out_of_range_windows_are_rejected() {
        let ds = build(StressConfig::default());
        let bytes = encode_binary(&ds, 1);
        for (a, b) in [(0, 0), (2, 1), (0, 4), (3, 3)] {
            let res = read_window_from_reader(Cursor::new(bytes.clone()), a, b);
            assert!(res.is_err(), "window [{a},{b}) accepted");
        }
    }
}
