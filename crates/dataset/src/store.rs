//! Dataset persistence.
//!
//! The paper's released artifact is a table of model parameters; our
//! equivalent deliverable also includes the aggregated dataset itself so
//! experiments need not re-simulate. JSON via serde — human-inspectable,
//! and the only serialization dependency in the workspace.

use crate::dataset::Dataset;
use std::io;
use std::path::Path;

/// Saves a dataset as JSON.
pub fn save_json(dataset: &Dataset, path: &Path) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    let writer = io::BufWriter::new(file);
    serde_json::to_writer(writer, dataset).map_err(io::Error::other)
}

/// Loads a dataset from JSON.
pub fn load_json(path: &Path) -> io::Result<Dataset> {
    let file = std::fs::File::open(path)?;
    let reader = io::BufReader::new(file);
    serde_json::from_reader(reader).map_err(io::Error::other)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::SliceFilter;
    use mtd_netsim::geo::Topology;
    use mtd_netsim::services::ServiceCatalog;
    use mtd_netsim::ScenarioConfig;

    #[test]
    fn json_roundtrip_preserves_queries() {
        let config = ScenarioConfig {
            n_bs: 6,
            days: 1,
            arrival_scale: 0.1,
            ..ScenarioConfig::small_test()
        };
        let topology = Topology::generate(config.n_bs, config.seed);
        let catalog = ServiceCatalog::paper();
        let ds = Dataset::build(&config, &topology, &catalog);

        let dir = std::env::temp_dir().join("mtd_dataset_store_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.json");
        save_json(&ds, &path).unwrap();
        let back = load_json(&path).unwrap();
        std::fs::remove_file(&path).ok();

        assert_eq!(back.n_services(), ds.n_services());
        assert_eq!(back.n_bs(), ds.n_bs());
        let fb = ds.service_by_name("Facebook").unwrap();
        assert_eq!(
            back.sessions(fb, &SliceFilter::all()),
            ds.sessions(fb, &SliceFilter::all())
        );
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(load_json(Path::new("/nonexistent/nope.json")).is_err());
    }
}
