//! Dataset persistence — JSON (compatibility) and `mtd-store` v2 binary.
//!
//! The paper's campaign spans 282k base stations over 45 days; a dataset
//! that size cannot live in a single monolithic `serde_json` blob. The
//! binary format here is chunked (so readers stream), checksummed per
//! chunk plus a whole-file CRC (so corruption is *detected*, never
//! silently fitted — a few damaged extreme records would skew every
//! heavy-tailed fit downstream), and written atomically via temp-file +
//! rename (so a crashed writer never leaves a half-file behind).
//!
//! Layout (all little-endian; see DESIGN.md §9 for the full spec):
//!
//! ```text
//! [magic "MTDSTORE"][version u32][flags u32]
//! chunk*                      — Meta, Deciles, Cells…, Minutes…
//! footer chunk (kind 0xFF)    — chunk count + whole-file CRC-32
//! ```
//!
//! Section order is a format invariant: Meta first, Deciles second, then
//! any number of Cells and Minutes chunks. Chunk payloads are encoded and
//! decoded in parallel across worker threads with output bit-identical to
//! the sequential path (same discipline as `Engine::run_parallel`).
//!
//! Recovery semantics: a damaged Cells/Minutes chunk is skippable — the
//! tolerant reader drops it, bumps an `mtd-telemetry` counter and records
//! the loss in a structured [`StoreReport`]; Meta/Deciles are required.
//! Transient I/O errors retry with bounded backoff.

use crate::chunk::{
    footer_payload, parse_footer, write_frame, FrameError, FrameReader, SectionKind,
};
use crate::dataset::{CellKey, Dataset, GroupKey, SignalingPlane};
use crate::format::{ByteReader, ByteWriter, Crc32, FormatError, FORMAT_VERSION, MAGIC};
use crate::record::CellStats;
use mtd_math::histogram::{LogGrid, LogHistogram};
use mtd_netsim::geo::Region;
use mtd_netsim::ids::Rat;
use mtd_netsim::time::MINUTES_PER_DAY;
use serde::Serialize;
use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Cell records per Cells chunk (~0.3–3 MB depending on sparsity).
/// Public because the campaign assembler batches cells identically to
/// reproduce [`encode_binary`]'s exact chunking.
pub const CELLS_PER_CHUNK: usize = 256;
/// Per-BS minute rows per Minutes chunk (same contract as
/// [`CELLS_PER_CHUNK`]). Signaling chunks use the same batch size.
pub const MINUTE_ROWS_PER_CHUNK: usize = 64;
/// Fixed file header length: 8-byte magic + version + flags.
pub const HEADER_LEN: usize = 16;
/// Newest format version this build reads and writes. Version 1 is the
/// original layout; version 2 adds optional Signaling chunks (tag 5)
/// after the Minutes chunks. Datasets without a signaling plane still
/// encode as version 1, byte for byte, so pre-control-plane files and
/// their golden fixtures are untouched.
pub const MAX_FORMAT_VERSION: u32 = 2;

// ---------------------------------------------------------------------------
// Errors and reports
// ---------------------------------------------------------------------------

/// Everything that can go wrong loading or saving a dataset.
#[derive(Debug)]
pub enum StoreError {
    /// The file does not exist.
    NotFound(PathBuf),
    /// An I/O operation failed (after transient-error retries).
    Io { path: PathBuf, source: io::Error },
    /// A JSON file exists but does not parse as a dataset.
    MalformedJson { path: PathBuf, detail: String },
    /// The file does not start with the binary magic.
    BadMagic,
    /// The file's format version is newer than this reader supports.
    UnsupportedVersion { found: u32, supported: u32 },
    /// The file ends inside a chunk.
    Truncated { offset: u64 },
    /// A chunk declares an implausible payload length (corrupt framing).
    OversizedChunk { offset: u64, len: u32 },
    /// A chunk failed its CRC or did not parse.
    ChunkCorrupt {
        section: String,
        index: u32,
        offset: u64,
        reason: String,
    },
    /// A required section never appeared.
    MissingSection(&'static str),
    /// A single-instance section appeared twice.
    DuplicateSection(&'static str),
    /// The footer is missing, miscounts chunks, or the whole-file CRC
    /// does not match.
    FooterMismatch { detail: String },
    /// Sections disagree with each other (e.g. BS counts differ).
    Inconsistent(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::NotFound(p) => write!(f, "dataset file not found: {}", p.display()),
            StoreError::Io { path, source } => {
                write!(f, "I/O error on {}: {source}", path.display())
            }
            StoreError::MalformedJson { path, detail } => {
                write!(f, "malformed JSON dataset {}: {detail}", path.display())
            }
            StoreError::BadMagic => write!(f, "not a binary dataset (bad magic)"),
            StoreError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported format version {found} (this build reads <= {supported})"
            ),
            StoreError::Truncated { offset } => {
                write!(f, "file truncated inside a chunk at offset {offset}")
            }
            StoreError::OversizedChunk { offset, len } => write!(
                f,
                "chunk at offset {offset} declares an implausible {len}-byte payload"
            ),
            StoreError::ChunkCorrupt {
                section,
                index,
                offset,
                reason,
            } => write!(
                f,
                "corrupt {section} chunk #{index} at offset {offset}: {reason}"
            ),
            StoreError::MissingSection(s) => write!(f, "required section missing: {s}"),
            StoreError::DuplicateSection(s) => write!(f, "section appears twice: {s}"),
            StoreError::FooterMismatch { detail } => write!(f, "footer mismatch: {detail}"),
            StoreError::Inconsistent(detail) => write!(f, "inconsistent dataset: {detail}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Per-chunk entry of a [`StoreReport`].
#[derive(Debug, Clone, Serialize)]
pub struct ChunkStatus {
    /// Section name ("meta", "cells", …) or "unknown(N)" for bad tags.
    pub section: String,
    /// Chunk index as stored in the frame.
    pub index: u32,
    /// Byte offset of the frame header.
    pub offset: u64,
    /// Payload length in bytes.
    pub payload_len: u32,
    /// Whether the chunk passed CRC and decoded.
    pub ok: bool,
    /// Failure reason when `ok` is false.
    pub error: Option<String>,
}

/// Structured integrity report produced by [`verify`] and by the
/// tolerant loader. Serializable so the CLI can export it as an artifact.
#[derive(Debug, Clone, Serialize)]
pub struct StoreReport {
    /// Source path, when read from a file.
    pub path: Option<String>,
    /// "binary-v1" or "json".
    pub format: String,
    /// Data chunks seen (footer excluded).
    pub total_chunks: usize,
    /// Chunks that failed CRC or payload decoding.
    pub corrupt_chunks: usize,
    /// Whether a footer was present with the correct chunk count.
    pub footer_ok: bool,
    /// Whether the whole-file CRC matched.
    pub file_crc_ok: bool,
    /// A fatal condition that stopped reading early, if any.
    pub fatal: Option<String>,
    /// Per-chunk detail.
    pub chunks: Vec<ChunkStatus>,
}

impl StoreReport {
    fn new(format: &str) -> StoreReport {
        StoreReport {
            path: None,
            format: format.to_string(),
            total_chunks: 0,
            corrupt_chunks: 0,
            footer_ok: false,
            file_crc_ok: false,
            fatal: None,
            chunks: Vec::new(),
        }
    }

    /// No corruption anywhere: every chunk intact, footer and CRC good.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.corrupt_chunks == 0 && self.footer_ok && self.file_crc_ok && self.fatal.is_none()
    }

    /// The report as pretty JSON (for `dataset verify --report`).
    /// Hand-rolled so report artifacts work even in minimal builds.
    #[must_use]
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out
        }
        fn opt_str(v: &Option<String>) -> String {
            v.as_deref()
                .map_or_else(|| "null".to_string(), |s| format!("\"{}\"", esc(s)))
        }
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"path\": {},\n", opt_str(&self.path)));
        out.push_str(&format!("  \"format\": \"{}\",\n", esc(&self.format)));
        out.push_str(&format!("  \"total_chunks\": {},\n", self.total_chunks));
        out.push_str(&format!("  \"corrupt_chunks\": {},\n", self.corrupt_chunks));
        out.push_str(&format!("  \"footer_ok\": {},\n", self.footer_ok));
        out.push_str(&format!("  \"file_crc_ok\": {},\n", self.file_crc_ok));
        out.push_str(&format!("  \"fatal\": {},\n", opt_str(&self.fatal)));
        out.push_str("  \"chunks\": [\n");
        for (i, c) in self.chunks.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"section\": \"{}\", \"index\": {}, \"offset\": {}, \
                 \"payload_len\": {}, \"ok\": {}, \"error\": {}}}{}\n",
                esc(&c.section),
                c.index,
                c.offset,
                c.payload_len,
                c.ok,
                opt_str(&c.error),
                if i + 1 == self.chunks.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}");
        out
    }
}

// ---------------------------------------------------------------------------
// Transient-I/O retry
// ---------------------------------------------------------------------------

fn is_transient(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Runs an I/O operation, retrying transient failures with bounded
/// exponential backoff (1 ms, 4 ms, 16 ms — then the error surfaces).
fn with_retry<T>(mut op: impl FnMut() -> io::Result<T>) -> io::Result<T> {
    let mut delay = Duration::from_millis(1);
    for _ in 0..3 {
        match op() {
            Err(e) if is_transient(&e) => {
                mtd_telemetry::count("store.io.retry", 1);
                std::thread::sleep(delay);
                delay *= 4;
            }
            other => return other,
        }
    }
    op()
}

fn io_err(path: &Path, source: io::Error) -> StoreError {
    if source.kind() == io::ErrorKind::NotFound {
        StoreError::NotFound(path.to_path_buf())
    } else {
        StoreError::Io {
            path: path.to_path_buf(),
            source,
        }
    }
}

// ---------------------------------------------------------------------------
// JSON path (compatibility fallback)
// ---------------------------------------------------------------------------

/// Saves a dataset as JSON (human-inspectable compatibility format).
pub fn save_json(dataset: &Dataset, path: &Path) -> Result<(), StoreError> {
    let _span = mtd_telemetry::span!("store.save_json");
    let text = crate::json::dataset_to_json(dataset);
    write_atomic(path, text.as_bytes())
}

/// Loads a dataset from JSON.
///
/// Unlike the historical `io::Result` signature, a missing file and a
/// present-but-malformed file are now distinct errors
/// ([`StoreError::NotFound`] vs [`StoreError::MalformedJson`]), so
/// callers can fall back on the former and must alert on the latter.
pub fn load_json(path: &Path) -> Result<Dataset, StoreError> {
    let _span = mtd_telemetry::span!("store.load_json");
    let bytes = with_retry(|| std::fs::read(path)).map_err(|e| io_err(path, e))?;
    let mut text = String::from_utf8(bytes).map_err(|_| StoreError::MalformedJson {
        path: path.to_path_buf(),
        detail: "not valid UTF-8".to_string(),
    })?;
    // Injected parse-fuzz (truncation / trailing garbage / structural
    // byte swap): the recursive-descent parser must reject with a
    // positioned message, never panic.
    mtd_fault::json_parse_corrupt(&mut text);
    crate::json::dataset_from_json(&text).map_err(|detail| StoreError::MalformedJson {
        path: path.to_path_buf(),
        detail,
    })
}

// ---------------------------------------------------------------------------
// Section payload codecs
// ---------------------------------------------------------------------------

/// Decoded Meta section: everything needed to size the other sections.
#[derive(Debug, Clone, PartialEq)]
pub struct MetaSection {
    pub volume_grid: LogGrid,
    pub duration_grid: LogGrid,
    pub service_names: Vec<String>,
    pub groups: Vec<GroupKey>,
    pub group_of_bs: Vec<u16>,
    pub n_days: u32,
}

impl MetaSection {
    /// Number of base stations.
    #[must_use]
    pub fn n_bs(&self) -> usize {
        self.group_of_bs.len()
    }

    /// Minutes per BS row (`n_days × 1440`).
    #[must_use]
    pub fn minutes_per_row(&self) -> usize {
        (self.n_days * MINUTES_PER_DAY) as usize
    }
}

/// Decoded Deciles section.
#[derive(Debug, Clone, PartialEq)]
pub struct DecileSection {
    pub decile_of_bs: Vec<u8>,
    pub bs_total_volume_mb: Vec<f64>,
}

/// One decoded Minutes chunk: rows for BSs `first_bs ..`.
#[derive(Debug, Clone, PartialEq)]
pub struct MinuteBlock {
    pub first_bs: u32,
    pub counts: Vec<Vec<u32>>,
    pub volumes: Vec<Vec<f32>>,
}

fn region_tag(r: Region) -> u8 {
    match r {
        Region::DenseUrban => 0,
        Region::SemiUrban => 1,
        Region::Rural => 2,
    }
}

fn region_from_tag(t: u8) -> Result<Region, FormatError> {
    match t {
        0 => Ok(Region::DenseUrban),
        1 => Ok(Region::SemiUrban),
        2 => Ok(Region::Rural),
        _ => Err(FormatError("unknown region tag")),
    }
}

fn rat_tag(r: Rat) -> u8 {
    match r {
        Rat::Lte => 0,
        Rat::Nr => 1,
    }
}

fn rat_from_tag(t: u8) -> Result<Rat, FormatError> {
    match t {
        0 => Ok(Rat::Lte),
        1 => Ok(Rat::Nr),
        _ => Err(FormatError("unknown RAT tag")),
    }
}

fn encode_meta(ds: &Dataset) -> Vec<u8> {
    encode_meta_fields(
        &ds.volume_grid,
        &ds.duration_grid,
        ds.n_days,
        &ds.service_names,
        &ds.groups,
        &ds.group_of_bs,
    )
}

/// Encodes a Meta payload from its components — the field-level twin of
/// the `&Dataset` encoder, for writers (the campaign assembler) that
/// never materialize a whole [`Dataset`]. Byte-identical to the path
/// [`encode_binary`] takes.
#[must_use]
pub fn encode_meta_fields(
    volume_grid: &LogGrid,
    duration_grid: &LogGrid,
    n_days: u32,
    service_names: &[String],
    groups: &[GroupKey],
    group_of_bs: &[u16],
) -> Vec<u8> {
    let mut w = ByteWriter::new();
    for grid in [volume_grid, duration_grid] {
        w.put_f64(grid.lo_log10());
        w.put_f64(grid.hi_log10());
        w.put_u32(grid.bins() as u32);
    }
    w.put_u32(n_days);
    w.put_u32(group_of_bs.len() as u32);
    w.put_u16(service_names.len() as u16);
    for name in service_names {
        w.put_str(name);
    }
    w.put_u32(groups.len() as u32);
    for g in groups {
        w.put_u8(g.decile);
        w.put_u8(region_tag(g.region));
        match g.city {
            None => {
                w.put_u8(0);
                w.put_u8(0);
            }
            Some(c) => {
                w.put_u8(1);
                w.put_u8(c);
            }
        }
        w.put_u8(rat_tag(g.rat));
    }
    for idx in group_of_bs {
        w.put_u16(*idx);
    }
    w.into_bytes()
}

fn decode_meta(payload: &[u8]) -> Result<MetaSection, FormatError> {
    let mut r = ByteReader::new(payload);
    let mut grids = Vec::with_capacity(2);
    for _ in 0..2 {
        let lo = r.get_f64()?;
        let hi = r.get_f64()?;
        let bins = r.get_u32()? as usize;
        grids.push(LogGrid::new(lo, hi, bins).map_err(|_| FormatError("invalid grid"))?);
    }
    let n_days = r.get_u32()?;
    let n_bs = r.get_u32()? as usize;
    // Sanity: minute rows must be addressable; also bounds allocation.
    if n_days == 0 || n_days > 10_000 || n_bs > 10_000_000 {
        return Err(FormatError("implausible day or BS count"));
    }
    let n_services = r.get_u16()? as usize;
    let mut service_names = Vec::with_capacity(n_services);
    for _ in 0..n_services {
        service_names.push(r.get_str()?);
    }
    let n_groups = r.get_u32()? as usize;
    if n_groups > u16::MAX as usize + 1 {
        return Err(FormatError("too many groups"));
    }
    let mut groups = Vec::with_capacity(n_groups);
    for _ in 0..n_groups {
        let decile = r.get_u8()?;
        let region = region_from_tag(r.get_u8()?)?;
        let has_city = r.get_u8()?;
        let city_val = r.get_u8()?;
        let city = match has_city {
            0 => None,
            1 => Some(city_val),
            _ => return Err(FormatError("bad city flag")),
        };
        let rat = rat_from_tag(r.get_u8()?)?;
        groups.push(GroupKey {
            decile,
            region,
            city,
            rat,
        });
    }
    if n_bs.saturating_mul(2) > r.remaining() {
        return Err(FormatError("declared count exceeds payload size"));
    }
    let mut group_of_bs = Vec::with_capacity(n_bs);
    for _ in 0..n_bs {
        let idx = r.get_u16()?;
        if idx as usize >= n_groups {
            return Err(FormatError("group index out of range"));
        }
        group_of_bs.push(idx);
    }
    if !r.is_exhausted() {
        return Err(FormatError("meta has trailing bytes"));
    }
    Ok(MetaSection {
        volume_grid: grids[0],
        duration_grid: grids[1],
        service_names,
        groups,
        group_of_bs,
        n_days,
    })
}

fn encode_deciles(ds: &Dataset) -> Vec<u8> {
    encode_deciles_fields(&ds.decile_of_bs, &ds.bs_total_volume_mb)
}

/// Encodes a Deciles payload from its components (see
/// [`encode_meta_fields`]).
#[must_use]
pub fn encode_deciles_fields(decile_of_bs: &[u8], bs_total_volume_mb: &[f64]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u32(decile_of_bs.len() as u32);
    for d in decile_of_bs {
        w.put_u8(*d);
    }
    w.put_f64_dense(bs_total_volume_mb);
    w.into_bytes()
}

fn decode_deciles(payload: &[u8]) -> Result<DecileSection, FormatError> {
    let mut r = ByteReader::new(payload);
    let n = r.get_u32()? as usize;
    if n > r.remaining() {
        return Err(FormatError("declared count exceeds payload size"));
    }
    let mut decile_of_bs = Vec::with_capacity(n);
    for _ in 0..n {
        let d = r.get_u8()?;
        if d > 9 {
            return Err(FormatError("decile out of range"));
        }
        decile_of_bs.push(d);
    }
    let bs_total_volume_mb = r.get_f64_dense()?;
    if bs_total_volume_mb.len() != n {
        return Err(FormatError("decile/total length mismatch"));
    }
    if !r.is_exhausted() {
        return Err(FormatError("deciles has trailing bytes"));
    }
    Ok(DecileSection {
        decile_of_bs,
        bs_total_volume_mb,
    })
}

/// Encodes one Cells chunk of up to [`CELLS_PER_CHUNK`] records. Public
/// for the campaign assembler, which feeds batches of exactly this size
/// in key order to reproduce [`encode_binary`]'s bytes.
#[must_use]
pub fn encode_cells_chunk(
    records: &[(&CellKey, &CellStats)],
    vbins: usize,
    dbins: usize,
) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u32(records.len() as u32);
    w.put_u32(vbins as u32);
    w.put_u32(dbins as u32);
    for ((service, group, day), cell) in records {
        w.put_u16(*service);
        w.put_u16(*group);
        w.put_u32(*day);
        w.put_f64(cell.sessions);
        w.put_f64(cell.traffic_mb);
        w.put_f64(cell.volume_hist.total());
        w.put_f64_vec(cell.volume_hist.counts());
        w.put_f64_vec(&cell.pair_sums);
        w.put_f64_vec(&cell.pair_counts);
        w.put_f64_vec(&cell.pair_log_sums);
        w.put_f64_vec(&cell.pair_log_sum_sqs);
    }
    w.into_bytes()
}

fn decode_cells_chunk(
    payload: &[u8],
    meta: &MetaSection,
) -> Result<Vec<(CellKey, CellStats)>, FormatError> {
    let mut r = ByteReader::new(payload);
    let n = r.get_u32()? as usize;
    let vbins = r.get_u32()? as usize;
    let dbins = r.get_u32()? as usize;
    if vbins != meta.volume_grid.bins() || dbins != meta.duration_grid.bins() {
        return Err(FormatError("cell grid dims disagree with meta"));
    }
    // Each record is at least 24 bytes of scalars + 5 vector tags.
    if n.saturating_mul(29) > r.remaining() + 29 {
        return Err(FormatError("declared count exceeds payload size"));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let service = r.get_u16()?;
        let group = r.get_u16()?;
        let day = r.get_u32()?;
        if (service as usize) >= meta.service_names.len()
            || (group as usize) >= meta.groups.len()
            || day >= meta.n_days
        {
            return Err(FormatError("cell key out of range"));
        }
        let sessions = r.get_f64()?;
        let traffic_mb = r.get_f64()?;
        let hist_total = r.get_f64()?;
        let hist_counts = r.get_f64_vec()?;
        if hist_counts.len() != vbins {
            return Err(FormatError("histogram length mismatch"));
        }
        let volume_hist = LogHistogram::from_parts(meta.volume_grid, hist_counts, hist_total)
            .map_err(|_| FormatError("invalid histogram contents"))?;
        let pair_sums = r.get_f64_vec()?;
        let pair_counts = r.get_f64_vec()?;
        let pair_log_sums = r.get_f64_vec()?;
        let pair_log_sum_sqs = r.get_f64_vec()?;
        for v in [&pair_sums, &pair_counts, &pair_log_sums, &pair_log_sum_sqs] {
            if v.len() != dbins {
                return Err(FormatError("pair vector length mismatch"));
            }
        }
        out.push((
            (service, group, day),
            CellStats {
                sessions,
                traffic_mb,
                volume_hist,
                pair_sums,
                pair_counts,
                pair_log_sums,
                pair_log_sum_sqs,
            },
        ));
    }
    if !r.is_exhausted() {
        return Err(FormatError("cells chunk has trailing bytes"));
    }
    Ok(out)
}

fn encode_minutes_chunk(ds: &Dataset, first_bs: usize, rows: usize) -> Vec<u8> {
    let row_len = ds
        .minute_counts
        .first()
        .map_or((ds.n_days * MINUTES_PER_DAY) as usize, Vec::len);
    let refs: Vec<(&[u32], &[f32])> = (first_bs..first_bs + rows)
        .map(|bs| {
            (
                ds.minute_counts[bs].as_slice(),
                ds.minute_volume_mb[bs].as_slice(),
            )
        })
        .collect();
    encode_minutes_rows(first_bs as u32, row_len, &refs)
}

/// Encodes one Minutes chunk from explicit rows (see
/// [`encode_meta_fields`]); rows cover BSs `first_bs ..`.
#[must_use]
pub fn encode_minutes_rows(first_bs: u32, row_len: usize, rows: &[(&[u32], &[f32])]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u32(first_bs);
    w.put_u32(rows.len() as u32);
    w.put_u32(row_len as u32);
    for (counts, volumes) in rows {
        w.put_u32_vec(counts);
        w.put_f32_vec(volumes);
    }
    w.into_bytes()
}

fn decode_minutes_chunk(payload: &[u8], meta: &MetaSection) -> Result<MinuteBlock, FormatError> {
    let mut r = ByteReader::new(payload);
    let first_bs = r.get_u32()?;
    let rows = r.get_u32()? as usize;
    let row_len = r.get_u32()? as usize;
    if row_len != meta.minutes_per_row() {
        return Err(FormatError("minute row length disagrees with meta"));
    }
    if (first_bs as usize).saturating_add(rows) > meta.n_bs() {
        return Err(FormatError("minute rows out of BS range"));
    }
    let mut counts = Vec::with_capacity(rows);
    let mut volumes = Vec::with_capacity(rows);
    for _ in 0..rows {
        let c = r.get_u32_vec()?;
        let v = r.get_f32_vec()?;
        if c.len() != row_len || v.len() != row_len {
            return Err(FormatError("minute row length mismatch"));
        }
        counts.push(c);
        volumes.push(v);
    }
    if !r.is_exhausted() {
        return Err(FormatError("minutes chunk has trailing bytes"));
    }
    Ok(MinuteBlock {
        first_bs,
        counts,
        volumes,
    })
}

/// One decoded Signaling chunk (format v2+): control-plane rows for BSs
/// `first_bs ..`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignalBlock {
    pub first_bs: u32,
    pub attach: Vec<Vec<u32>>,
    pub handover: Vec<Vec<u32>>,
    pub paging: Vec<Vec<u32>>,
}

fn encode_signaling_chunk(plane: &SignalingPlane, first_bs: usize, rows: usize) -> Vec<u8> {
    let row_len = plane.attach.first().map_or(0, Vec::len);
    let refs: Vec<(&[u32], &[u32], &[u32])> = (first_bs..first_bs + rows)
        .map(|bs| {
            (
                plane.attach[bs].as_slice(),
                plane.handover[bs].as_slice(),
                plane.paging[bs].as_slice(),
            )
        })
        .collect();
    encode_signaling_rows(first_bs as u32, row_len, &refs)
}

/// Encodes one Signaling chunk from explicit rows (see
/// [`encode_meta_fields`]); each row is that BS's
/// `(attach, handover, paging)` minute counts.
#[must_use]
pub fn encode_signaling_rows(
    first_bs: u32,
    row_len: usize,
    rows: &[(&[u32], &[u32], &[u32])],
) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u32(first_bs);
    w.put_u32(rows.len() as u32);
    w.put_u32(row_len as u32);
    for (attach, handover, paging) in rows {
        w.put_u32_vec(attach);
        w.put_u32_vec(handover);
        w.put_u32_vec(paging);
    }
    w.into_bytes()
}

fn decode_signaling_chunk(payload: &[u8], meta: &MetaSection) -> Result<SignalBlock, FormatError> {
    let mut r = ByteReader::new(payload);
    let first_bs = r.get_u32()?;
    let rows = r.get_u32()? as usize;
    let row_len = r.get_u32()? as usize;
    if row_len != meta.minutes_per_row() {
        return Err(FormatError("signaling row length disagrees with meta"));
    }
    if (first_bs as usize).saturating_add(rows) > meta.n_bs() {
        return Err(FormatError("signaling rows out of BS range"));
    }
    let mut attach = Vec::with_capacity(rows);
    let mut handover = Vec::with_capacity(rows);
    let mut paging = Vec::with_capacity(rows);
    for _ in 0..rows {
        let a = r.get_u32_vec()?;
        let h = r.get_u32_vec()?;
        let p = r.get_u32_vec()?;
        if a.len() != row_len || h.len() != row_len || p.len() != row_len {
            return Err(FormatError("signaling row length mismatch"));
        }
        attach.push(a);
        handover.push(h);
        paging.push(p);
    }
    if !r.is_exhausted() {
        return Err(FormatError("signaling chunk has trailing bytes"));
    }
    Ok(SignalBlock {
        first_bs,
        attach,
        handover,
        paging,
    })
}

// ---------------------------------------------------------------------------
// Parallel decode sizing
// ---------------------------------------------------------------------------

/// Below this file size, parallel decode loses to sequential: thread
/// spawn plus result shuffling costs more than the decode itself (the
/// BENCH_store.json regression where 4 threads were ~13% slower than
/// sequential on the ~23 MB default campaign).
const PAR_DECODE_MIN_BYTES: usize = 64 << 20;

/// With fewer chunks than this there is not enough independent work to
/// amortize fan-out, whatever the byte count.
const PAR_DECODE_MIN_CHUNKS: usize = 16;

/// Worker count actually used for decoding: the caller's request, demoted
/// to sequential when the file is too small to profit from fan-out.
fn effective_decode_threads(requested: usize, bytes: usize, chunks: usize) -> usize {
    if bytes < PAR_DECODE_MIN_BYTES || chunks < PAR_DECODE_MIN_CHUNKS {
        1
    } else {
        requested.max(1)
    }
}

// ---------------------------------------------------------------------------
// Binary encode
// ---------------------------------------------------------------------------

enum EncodeJob<'a> {
    Meta,
    Deciles,
    Cells(Vec<(&'a CellKey, &'a CellStats)>),
    Minutes { first_bs: usize, rows: usize },
    Signaling { first_bs: usize, rows: usize },
}

/// The header version a dataset encodes under: v1 unless it carries the
/// (v2-only) signaling plane. Public so out-of-core writers (the
/// campaign assembler) pick the same version as [`encode_binary`].
#[must_use]
pub fn dataset_format_version(has_signaling: bool) -> u32 {
    if has_signaling {
        MAX_FORMAT_VERSION
    } else {
        FORMAT_VERSION
    }
}

/// Encodes a dataset into the complete binary file image.
///
/// `threads` parallelizes chunk payload encoding; the output bytes are
/// identical for any thread count.
#[must_use]
pub fn encode_binary(ds: &Dataset, threads: usize) -> Vec<u8> {
    let _span = mtd_telemetry::span!("store.encode_binary");
    let vbins = ds.volume_grid.bins();
    let dbins = ds.duration_grid.bins();

    let mut jobs: Vec<EncodeJob> = vec![EncodeJob::Meta, EncodeJob::Deciles];
    let cell_refs: Vec<(&CellKey, &CellStats)> = ds.cells.iter().collect();
    for batch in cell_refs.chunks(CELLS_PER_CHUNK) {
        jobs.push(EncodeJob::Cells(batch.to_vec()));
    }
    let n_bs = ds.minute_counts.len();
    let mut first = 0;
    while first < n_bs {
        let rows = MINUTE_ROWS_PER_CHUNK.min(n_bs - first);
        jobs.push(EncodeJob::Minutes {
            first_bs: first,
            rows,
        });
        first += rows;
    }
    if let Some(plane) = ds.signaling() {
        let mut first = 0;
        while first < plane.n_bs() {
            let rows = MINUTE_ROWS_PER_CHUNK.min(plane.n_bs() - first);
            jobs.push(EncodeJob::Signaling {
                first_bs: first,
                rows,
            });
            first += rows;
        }
    }

    let payloads = mtd_par::Pool::new(threads).par_map_indexed(jobs.len(), |i| match &jobs[i] {
        EncodeJob::Meta => encode_meta(ds),
        EncodeJob::Deciles => encode_deciles(ds),
        EncodeJob::Cells(batch) => encode_cells_chunk(batch, vbins, dbins),
        EncodeJob::Minutes { first_bs, rows } => encode_minutes_chunk(ds, *first_bs, *rows),
        EncodeJob::Signaling { first_bs, rows } => encode_signaling_chunk(
            ds.signaling().expect("job only queued when present"),
            *first_bs,
            *rows,
        ),
    });

    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&dataset_format_version(ds.signaling().is_some()).to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes()); // flags, reserved
    for (i, (job, payload)) in jobs.iter().zip(&payloads).enumerate() {
        let kind = match job {
            EncodeJob::Meta => SectionKind::Meta,
            EncodeJob::Deciles => SectionKind::Deciles,
            EncodeJob::Cells(_) => SectionKind::Cells,
            EncodeJob::Minutes { .. } => SectionKind::Minutes,
            EncodeJob::Signaling { .. } => SectionKind::Signaling,
        };
        write_frame(&mut out, kind, i as u32, payload);
    }
    let file_crc = crate::format::crc32(&out);
    write_frame(
        &mut out,
        SectionKind::Footer,
        jobs.len() as u32,
        &footer_payload(jobs.len() as u32, file_crc),
    );
    mtd_telemetry::gauge_set("store.encode.bytes", out.len() as f64);
    out
}

/// Writes bytes to `path` atomically: temp file in the same directory,
/// flush, then rename over the destination. Public so sibling crates
/// (the campaign manifest) inherit both the atomicity contract and the
/// injected write faults.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    let faults = mtd_fault::store_write_faults(bytes.len());
    if faults.any() {
        return write_atomic_faulted(path, bytes, &faults);
    }
    let tmp = path.with_extension("tmp-partial");
    let result = (|| -> io::Result<()> {
        let mut file = with_retry(|| std::fs::File::create(&tmp))?;
        with_retry(|| file.write_all(bytes))?;
        with_retry(|| file.sync_all())?;
        drop(file);
        with_retry(|| std::fs::rename(&tmp, path))
    })();
    if let Err(e) = result {
        std::fs::remove_file(&tmp).ok();
        return Err(io_err(path, e));
    }
    Ok(())
}

/// The faulted twin of [`write_atomic`], taken only when an injected
/// [`mtd_fault::WriteFaults`] bundle fired. Preserves the atomicity
/// contract — on error the destination keeps its previous content and no
/// temp file leaks — except under the `store.write.skip_atomic` mutation
/// site, which deliberately bypasses the temp-file + rename protocol so
/// the chaos harness can prove it detects torn outputs.
#[cold]
fn write_atomic_faulted(
    path: &Path,
    bytes: &[u8],
    faults: &mtd_fault::WriteFaults,
) -> Result<(), StoreError> {
    let mut image = bytes.to_vec();
    if let Some((off, bit)) = faults.flip {
        // Post-encode flip: models silent media corruption, which the
        // read side must catch via frame CRCs / the file-CRC footer.
        image[off] ^= 1 << bit;
    }
    let target = if faults.skip_atomic {
        path.to_path_buf()
    } else {
        path.with_extension("tmp-partial")
    };
    let result = (|| -> io::Result<()> {
        if faults.enospc {
            return Err(io::Error::other("injected ENOSPC (store.write.enospc)"));
        }
        let mut file = with_retry(|| std::fs::File::create(&target))?;
        if let Some(keep) = faults.short {
            file.write_all(&image[..keep])?;
            let _ = file.sync_all();
            return Err(io::Error::other(format!(
                "injected short write after {keep} of {} bytes (store.write.short)",
                image.len()
            )));
        }
        with_retry(|| file.write_all(&image))?;
        with_retry(|| file.sync_all())?;
        drop(file);
        if faults.rename_fail {
            return Err(io::Error::other(
                "injected rename failure (store.write.rename)",
            ));
        }
        if !faults.skip_atomic {
            with_retry(|| std::fs::rename(&target, path))?;
        }
        Ok(())
    })();
    if let Err(e) = result {
        if !faults.skip_atomic {
            std::fs::remove_file(&target).ok();
        }
        return Err(io_err(path, e));
    }
    Ok(())
}

/// Saves a dataset in the binary format, using all available cores for
/// chunk encoding. Atomic: a crash mid-write never corrupts `path`.
pub fn save_binary(ds: &Dataset, path: &Path) -> Result<(), StoreError> {
    save_binary_with_threads(ds, path, mtd_par::threads())
}

/// [`save_binary`] with an explicit worker count (output is identical for
/// any count).
pub fn save_binary_with_threads(
    ds: &Dataset,
    path: &Path,
    threads: usize,
) -> Result<(), StoreError> {
    let _span = mtd_telemetry::span!("store.save_binary");
    let bytes = encode_binary(ds, threads);
    write_atomic(path, &bytes)
}

// ---------------------------------------------------------------------------
// Streaming writer
// ---------------------------------------------------------------------------

/// Streaming binary store writer: appends one frame at a time to a temp
/// file and atomically renames it into place on [`StoreWriter::finish`].
///
/// Fed the same payloads in the same order, the output is byte-identical
/// to [`encode_binary`] — but peak memory is one frame, not the whole
/// file image, which is what lets the campaign assembler emit
/// paper-scale stores out of core. Frame indices and the whole-file CRC
/// footer are maintained internally.
pub struct StoreWriter {
    path: PathBuf,
    tmp: PathBuf,
    file: Option<io::BufWriter<std::fs::File>>,
    crc: Crc32,
    next_index: u32,
    frame_buf: Vec<u8>,
    bytes_written: u64,
}

impl StoreWriter {
    /// Opens the temp file and writes the fixed header (format v1 — the
    /// version without a signaling plane).
    pub fn create(path: &Path) -> Result<StoreWriter, StoreError> {
        Self::create_versioned(path, FORMAT_VERSION)
    }

    /// [`StoreWriter::create`] with an explicit header version; writers
    /// that append Signaling frames must pass [`MAX_FORMAT_VERSION`].
    pub fn create_versioned(path: &Path, version: u32) -> Result<StoreWriter, StoreError> {
        assert!(
            (1..=MAX_FORMAT_VERSION).contains(&version),
            "unwritable format version {version}"
        );
        let tmp = path.with_extension("tmp-partial");
        let file = with_retry(|| std::fs::File::create(&tmp)).map_err(|e| io_err(path, e))?;
        let mut writer = StoreWriter {
            path: path.to_path_buf(),
            tmp,
            file: Some(io::BufWriter::new(file)),
            crc: Crc32::new(),
            next_index: 0,
            frame_buf: Vec::new(),
            bytes_written: 0,
        };
        let mut header = Vec::with_capacity(HEADER_LEN);
        header.extend_from_slice(&MAGIC);
        header.extend_from_slice(&version.to_le_bytes());
        header.extend_from_slice(&0u32.to_le_bytes()); // flags, reserved
        writer.write_checksummed(&header)?;
        Ok(writer)
    }

    fn write_raw(&mut self, bytes: &[u8]) -> Result<(), StoreError> {
        let file = self.file.as_mut().expect("StoreWriter already finished");
        with_retry(|| file.write_all(bytes)).map_err(|e| io_err(&self.path, e))?;
        self.bytes_written += bytes.len() as u64;
        Ok(())
    }

    fn write_checksummed(&mut self, bytes: &[u8]) -> Result<(), StoreError> {
        self.crc.update(bytes);
        self.write_raw(bytes)
    }

    /// Appends one data frame; indices are assigned sequentially in
    /// append order (the format's chunk-index invariant).
    pub fn append(&mut self, kind: SectionKind, payload: &[u8]) -> Result<(), StoreError> {
        self.frame_buf.clear();
        write_frame(&mut self.frame_buf, kind, self.next_index, payload);
        self.next_index += 1;
        let frame = std::mem::take(&mut self.frame_buf);
        let result = self.write_checksummed(&frame);
        self.frame_buf = frame;
        result
    }

    /// Data frames appended so far.
    #[must_use]
    pub fn frames(&self) -> u32 {
        self.next_index
    }

    /// Writes the footer, syncs, and atomically renames the temp file
    /// over the destination. Returns the total bytes written.
    pub fn finish(mut self) -> Result<u64, StoreError> {
        let count = self.next_index;
        let file_crc = self.crc.finish();
        self.frame_buf.clear();
        let mut footer = std::mem::take(&mut self.frame_buf);
        write_frame(
            &mut footer,
            SectionKind::Footer,
            count,
            &footer_payload(count, file_crc),
        );
        // The footer frame is not part of the whole-file CRC it carries.
        self.write_raw(&footer)?;
        let file = self.file.take().expect("StoreWriter already finished");
        let result = (|| -> io::Result<u64> {
            let file = file.into_inner().map_err(io::IntoInnerError::into_error)?;
            with_retry(|| file.sync_all())?;
            drop(file);
            with_retry(|| std::fs::rename(&self.tmp, &self.path))?;
            Ok(self.bytes_written)
        })();
        match result {
            Ok(n) => Ok(n),
            Err(e) => {
                std::fs::remove_file(&self.tmp).ok();
                Err(io_err(&self.path, e))
            }
        }
    }
}

impl Drop for StoreWriter {
    fn drop(&mut self) {
        // An abandoned writer (error or early return) must not leak its
        // temp file; a finished one already renamed it away.
        if self.file.take().is_some() {
            std::fs::remove_file(&self.tmp).ok();
        }
    }
}

// ---------------------------------------------------------------------------
// Binary decode
// ---------------------------------------------------------------------------

fn frame_error(e: FrameError, path_hint: Option<&Path>) -> StoreError {
    match e {
        FrameError::Io(source) => StoreError::Io {
            path: path_hint.map_or_else(|| PathBuf::from("<bytes>"), Path::to_path_buf),
            source,
        },
        FrameError::Truncated { offset } => StoreError::Truncated { offset },
        FrameError::OversizedChunk { offset, len } => StoreError::OversizedChunk { offset, len },
    }
}

fn check_header(bytes: &[u8]) -> Result<u32, StoreError> {
    if bytes.len() < HEADER_LEN {
        return Err(StoreError::BadMagic);
    }
    if bytes[..8] != MAGIC {
        return Err(StoreError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version == 0 || version > MAX_FORMAT_VERSION {
        return Err(StoreError::UnsupportedVersion {
            found: version,
            supported: MAX_FORMAT_VERSION,
        });
    }
    Ok(version)
}

struct FrameScan {
    meta: Option<MetaSection>,
    deciles: Option<DecileSection>,
    cell_payloads: Vec<(u32, u64, Vec<u8>)>,
    minute_payloads: Vec<(u32, u64, Vec<u8>)>,
    signaling_payloads: Vec<(u32, u64, Vec<u8>)>,
    report: StoreReport,
}

/// Walks every frame of a binary image, decoding Meta/Deciles inline and
/// collecting Cells/Minutes payloads for (possibly parallel) decoding.
///
/// In strict mode the first problem is an error; in tolerant mode
/// skippable problems are recorded in the report and reading continues.
fn scan_frames(bytes: &[u8], strict: bool) -> Result<FrameScan, StoreError> {
    let version = check_header(bytes)?;
    let mut crc = Crc32::new();
    crc.update(&bytes[..HEADER_LEN]);
    let mut frames = FrameReader::new(&bytes[HEADER_LEN..], HEADER_LEN as u64, crc);

    let mut scan = FrameScan {
        meta: None,
        deciles: None,
        cell_payloads: Vec::new(),
        minute_payloads: Vec::new(),
        signaling_payloads: Vec::new(),
        report: StoreReport::new(&format!("binary-v{version}")),
    };
    let mut footer_seen = false;
    let mut data_chunks = 0usize;

    loop {
        let frame = match frames.next_frame() {
            Ok(Some(f)) => f,
            Ok(None) => break,
            Err(e) => {
                let err = frame_error(e, None);
                if strict {
                    return Err(err);
                }
                mtd_telemetry::count("store.chunk.corrupt", 1);
                scan.report.fatal = Some(err.to_string());
                break;
            }
        };
        if footer_seen {
            let err = StoreError::FooterMismatch {
                detail: "data after footer".into(),
            };
            if strict {
                return Err(err);
            }
            scan.report.fatal = Some(err.to_string());
            break;
        }
        let section_name = frame.kind().map_or_else(
            || format!("unknown({})", frame.kind_tag),
            |k| k.name().into(),
        );
        let mut status = ChunkStatus {
            section: section_name.clone(),
            index: frame.index,
            offset: frame.offset,
            payload_len: frame.payload.len() as u32,
            ok: frame.crc_ok,
            error: if frame.crc_ok {
                None
            } else {
                Some("payload CRC mismatch".into())
            },
        };

        let kind = frame.kind();
        if kind == Some(SectionKind::Footer) {
            footer_seen = true;
            if frame.crc_ok {
                match parse_footer(&frame.payload) {
                    Ok((count, stored_crc)) => {
                        // The footer's frame index duplicates the chunk
                        // count: it is the only frame-header field not
                        // covered by the whole-file CRC, so it must be
                        // cross-checked or flips there go unnoticed.
                        scan.report.footer_ok =
                            count as usize == data_chunks && frame.index == count;
                        scan.report.file_crc_ok = stored_crc == frame.file_crc_before;
                        if !scan.report.footer_ok {
                            status.ok = false;
                            status.error = Some(format!(
                                "footer counts {count} chunks (frame index {}), file has {data_chunks}",
                                frame.index
                            ));
                        } else if !scan.report.file_crc_ok {
                            status.ok = false;
                            status.error = Some("whole-file CRC mismatch".into());
                        }
                    }
                    Err(e) => {
                        status.ok = false;
                        status.error = Some(e.to_string());
                    }
                }
            }
            if !status.ok && strict {
                return Err(StoreError::FooterMismatch {
                    detail: status.error.unwrap_or_default(),
                });
            }
            scan.report.chunks.push(status);
            continue;
        }

        data_chunks += 1;
        scan.report.total_chunks = data_chunks;

        // Handle a chunk whose payload failed CRC or whose tag is unknown.
        let corrupt = |status: &mut ChunkStatus, reason: &str| {
            status.ok = false;
            status.error = Some(reason.to_string());
        };
        let mut failed: Option<String> = None;
        if !frame.crc_ok {
            failed = Some("payload CRC mismatch".into());
        } else {
            match kind {
                Some(SectionKind::Meta) => {
                    if scan.meta.is_some() {
                        if strict {
                            return Err(StoreError::DuplicateSection("meta"));
                        }
                        failed = Some("duplicate meta section".into());
                    } else {
                        match decode_meta(&frame.payload) {
                            Ok(m) => scan.meta = Some(m),
                            Err(e) => failed = Some(e.to_string()),
                        }
                    }
                }
                Some(SectionKind::Deciles) => {
                    if scan.deciles.is_some() {
                        if strict {
                            return Err(StoreError::DuplicateSection("deciles"));
                        }
                        failed = Some("duplicate deciles section".into());
                    } else {
                        match decode_deciles(&frame.payload) {
                            Ok(d) => scan.deciles = Some(d),
                            Err(e) => failed = Some(e.to_string()),
                        }
                    }
                }
                Some(SectionKind::Cells) => {
                    scan.cell_payloads
                        .push((frame.index, frame.offset, frame.payload));
                }
                Some(SectionKind::Minutes) => {
                    scan.minute_payloads
                        .push((frame.index, frame.offset, frame.payload));
                }
                Some(SectionKind::Signaling) => {
                    // The tag exists only in v2+; in a v1 file it is as
                    // corrupt as any unknown byte.
                    if version >= 2 {
                        scan.signaling_payloads
                            .push((frame.index, frame.offset, frame.payload));
                    } else {
                        failed = Some("signaling section in a v1 file".into());
                    }
                }
                Some(SectionKind::Footer) => unreachable!("handled above"),
                None => failed = Some(format!("unknown section tag {}", frame.kind_tag)),
            }
        }
        if let Some(reason) = failed {
            mtd_telemetry::count("store.chunk.corrupt", 1);
            corrupt(&mut status, &reason);
            scan.report.corrupt_chunks += 1;
            if strict {
                return Err(StoreError::ChunkCorrupt {
                    section: section_name,
                    index: frame.index,
                    offset: frame.offset,
                    reason,
                });
            }
            mtd_telemetry::count("store.chunk.skipped", 1);
        }
        scan.report.chunks.push(status);
    }

    if !footer_seen {
        let err = StoreError::FooterMismatch {
            detail: "footer missing".into(),
        };
        if strict {
            return Err(err);
        }
        if scan.report.fatal.is_none() {
            scan.report.fatal = Some(err.to_string());
        }
    } else if strict && !(scan.report.footer_ok && scan.report.file_crc_ok) {
        return Err(StoreError::FooterMismatch {
            detail: if scan.report.file_crc_ok {
                "chunk count mismatch".into()
            } else {
                "whole-file CRC mismatch".into()
            },
        });
    }
    Ok(scan)
}

/// Decodes a complete binary image strictly: any corruption is an error.
pub fn decode_binary(bytes: &[u8], threads: usize) -> Result<Dataset, StoreError> {
    let (ds, _report) = decode_inner(bytes, true, threads)?;
    Ok(ds)
}

/// Decodes tolerantly: damaged Cells/Minutes chunks are skipped (their
/// data is simply absent from the result) and tallied in the report;
/// damaged Meta/Deciles are unrecoverable and error out.
pub fn decode_binary_tolerant(bytes: &[u8]) -> Result<(Dataset, StoreReport), StoreError> {
    decode_inner(bytes, false, 1)
}

fn decode_inner(
    bytes: &[u8],
    strict: bool,
    threads: usize,
) -> Result<(Dataset, StoreReport), StoreError> {
    let _span = mtd_telemetry::span!("store.decode_binary");
    let mut scan = scan_frames(bytes, strict)?;
    let meta = scan.meta.take().ok_or(StoreError::MissingSection("meta"))?;
    let deciles = scan
        .deciles
        .take()
        .ok_or(StoreError::MissingSection("deciles"))?;

    // Decode the fat sections in parallel; each job is independent. Small
    // files demote to sequential — fan-out costs more than it saves there.
    let chunks =
        scan.cell_payloads.len() + scan.minute_payloads.len() + scan.signaling_payloads.len();
    let pool = mtd_par::Pool::new(effective_decode_threads(threads, bytes.len(), chunks));
    let cell_results = pool.par_map_indexed(scan.cell_payloads.len(), |i| {
        decode_cells_chunk(&scan.cell_payloads[i].2, &meta)
    });
    let minute_results = pool.par_map_indexed(scan.minute_payloads.len(), |i| {
        decode_minutes_chunk(&scan.minute_payloads[i].2, &meta)
    });
    let signaling_results = pool.par_map_indexed(scan.signaling_payloads.len(), |i| {
        decode_signaling_chunk(&scan.signaling_payloads[i].2, &meta)
    });

    let mut asm = DatasetAssembler::new(meta, strict);
    asm.set_deciles(deciles).map_err(StoreError::Inconsistent)?;

    // Fold decoded batches in; in strict mode any decode or assembly
    // failure is fatal with full chunk context, in tolerant mode the
    // chunk is dropped and tallied.
    let fold = |result: Result<Result<(), String>, FormatError>,
                section: &str,
                index: u32,
                offset: u64,
                report: &mut StoreReport|
     -> Result<(), StoreError> {
        let reason = match result {
            Ok(Ok(())) => return Ok(()),
            Ok(Err(reason)) => reason,
            Err(e) => e.to_string(),
        };
        mtd_telemetry::count("store.chunk.corrupt", 1);
        if strict {
            return Err(StoreError::ChunkCorrupt {
                section: section.into(),
                index,
                offset,
                reason,
            });
        }
        mtd_telemetry::count("store.chunk.skipped", 1);
        report.corrupt_chunks += 1;
        mark_chunk_bad(report, offset, &reason);
        Ok(())
    };

    for (result, (index, offset, _)) in cell_results.into_iter().zip(&scan.cell_payloads) {
        let applied = result.map(|batch| asm.add_cells(batch));
        fold(applied, "cells", *index, *offset, &mut scan.report)?;
    }
    for (result, (index, offset, _)) in minute_results.into_iter().zip(&scan.minute_payloads) {
        let applied = result.map(|block| asm.add_minutes(block));
        fold(applied, "minutes", *index, *offset, &mut scan.report)?;
    }
    for (result, (index, offset, _)) in signaling_results.into_iter().zip(&scan.signaling_payloads)
    {
        let applied = result.map(|block| asm.add_signaling(block));
        fold(applied, "signaling", *index, *offset, &mut scan.report)?;
    }

    Ok((asm.finish()?, scan.report))
}

/// Flips a previously-ok chunk status to failed (payload decode errors
/// are discovered after the scan pass recorded the CRC result).
fn mark_chunk_bad(report: &mut StoreReport, offset: u64, reason: &str) {
    if let Some(status) = report.chunks.iter_mut().find(|c| c.offset == offset) {
        status.ok = false;
        status.error = Some(reason.to_string());
    }
}

fn read_file(path: &Path) -> Result<Vec<u8>, StoreError> {
    let mut bytes = with_retry(|| std::fs::read(path)).map_err(|e| io_err(path, e))?;
    // Injected read-side corruption (truncation between frames, bit rot):
    // mutates the in-memory image before any decoding, so the strict
    // loader must surface a structured error, never a panic.
    mtd_fault::store_read_mutate(&mut bytes);
    Ok(bytes)
}

/// Loads a binary dataset strictly, decoding chunks on all cores.
pub fn load_binary(path: &Path) -> Result<Dataset, StoreError> {
    load_binary_with_threads(path, mtd_par::threads())
}

/// [`load_binary`] with an explicit worker count.
pub fn load_binary_with_threads(path: &Path, threads: usize) -> Result<Dataset, StoreError> {
    let _span = mtd_telemetry::span!("store.load_binary");
    decode_binary(&read_file(path)?, threads)
}

/// Loads a binary dataset, skipping damaged skippable chunks. Returns the
/// dataset plus a report of everything that was wrong with the file.
pub fn load_binary_tolerant(path: &Path) -> Result<(Dataset, StoreReport), StoreError> {
    let _span = mtd_telemetry::span!("store.load_binary_tolerant");
    let bytes = read_file(path)?;
    let (ds, mut report) = decode_binary_tolerant(&bytes)?;
    report.path = Some(path.display().to_string());
    Ok((ds, report))
}

// ---------------------------------------------------------------------------
// Format detection, verification
// ---------------------------------------------------------------------------

/// On-disk dataset encodings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// serde_json blob (compatibility).
    Json,
    /// Chunked, checksummed binary (`mtd-store` v2).
    Binary,
}

impl Format {
    /// Parses a `--format` CLI value.
    pub fn parse(s: &str) -> Result<Format, String> {
        match s {
            "json" => Ok(Format::Json),
            "binary" | "bin" => Ok(Format::Binary),
            other => Err(format!("unknown format {other:?} (expected json|binary)")),
        }
    }
}

/// Sniffs a file's format from its first bytes.
pub fn detect_format(path: &Path) -> Result<Format, StoreError> {
    let mut head = [0u8; 8];
    let mut file = with_retry(|| std::fs::File::open(path)).map_err(|e| io_err(path, e))?;
    let n = file.read(&mut head).map_err(|e| io_err(path, e))?;
    if n >= MAGIC.len() && head == MAGIC {
        Ok(Format::Binary)
    } else {
        Ok(Format::Json)
    }
}

/// Loads a dataset in either format, sniffing by magic.
pub fn load_auto(path: &Path) -> Result<Dataset, StoreError> {
    match detect_format(path)? {
        Format::Binary => load_binary(path),
        Format::Json => load_json(path),
    }
}

/// Verifies a dataset file's integrity without materializing the dataset.
///
/// Binary: walks every chunk, checks each CRC, the footer chunk count and
/// the whole-file CRC. JSON: checks the file parses. Returns a structured
/// report; hard failures that prevent even walking the file are reported
/// in `fatal` rather than as an `Err` (so the caller always gets a
/// report for a readable file).
pub fn verify(path: &Path) -> Result<StoreReport, StoreError> {
    let _span = mtd_telemetry::span!("store.verify");
    let format = detect_format(path)?;
    let mut report = match format {
        Format::Json => {
            let mut report = StoreReport::new("json");
            report.footer_ok = true; // not applicable
            match load_json(path) {
                Ok(_) => report.file_crc_ok = true,
                Err(e) => report.fatal = Some(e.to_string()),
            }
            report
        }
        Format::Binary => verify_bytes(&read_file(path)?),
    };
    report.path = Some(path.display().to_string());
    mtd_telemetry::count("store.verify.corrupt_chunks", report.corrupt_chunks as u64);
    Ok(report)
}

/// [`verify`] for an in-memory binary image — the workhorse behind it,
/// exposed so integrity batteries can sweep thousands of corrupted images
/// without touching the filesystem.
#[must_use]
pub fn verify_bytes(bytes: &[u8]) -> StoreReport {
    match scan_frames(bytes, false) {
        Ok(mut scan) => {
            // Payload CRCs passed; also check the payloads decode.
            if let Some(meta) = scan.meta.as_ref() {
                for (_, offset, payload) in &scan.cell_payloads {
                    if let Err(e) = decode_cells_chunk(payload, meta) {
                        scan.report.corrupt_chunks += 1;
                        mark_chunk_bad(&mut scan.report, *offset, &e.to_string());
                    }
                }
                for (_, offset, payload) in &scan.minute_payloads {
                    if let Err(e) = decode_minutes_chunk(payload, meta) {
                        scan.report.corrupt_chunks += 1;
                        mark_chunk_bad(&mut scan.report, *offset, &e.to_string());
                    }
                }
                for (_, offset, payload) in &scan.signaling_payloads {
                    if let Err(e) = decode_signaling_chunk(payload, meta) {
                        scan.report.corrupt_chunks += 1;
                        mark_chunk_bad(&mut scan.report, *offset, &e.to_string());
                    }
                }
            } else if scan.report.fatal.is_none() {
                scan.report.fatal = Some("required section missing: meta".into());
            }
            if scan.deciles.is_none() && scan.report.fatal.is_none() {
                scan.report.fatal = Some("required section missing: deciles".into());
            }
            scan.report
        }
        Err(e) => {
            // Header-level failure (bad magic / version).
            let mut report = StoreReport::new("binary");
            report.fatal = Some(e.to_string());
            report
        }
    }
}

// ---------------------------------------------------------------------------
// Streaming reader
// ---------------------------------------------------------------------------

/// One decoded chunk yielded by [`DatasetStream`].
#[derive(Debug)]
pub enum StreamedChunk {
    /// Per-BS deciles and campaign totals.
    Deciles(DecileSection),
    /// A batch of cells: `(service, group, day)` keys with their stats.
    Cells(Vec<((u16, u16, u32), CellStats)>),
    /// A batch of per-BS minute rows.
    Minutes(MinuteBlock),
    /// A batch of per-BS control-plane rows (format v2+).
    Signaling(SignalBlock),
}

/// Streams a binary dataset file chunk by chunk without materializing the
/// whole dataset — the reader consumers like `mtd-core`'s streamed fit
/// use to keep memory bounded on campaign-scale files.
///
/// Damaged skippable chunks are skipped (telemetry-counted, recorded in
/// the running report); damaged required sections are fatal.
pub struct DatasetStream<R: Read> {
    frames: FrameReader<R>,
    version: u32,
    meta: MetaSection,
    report: StoreReport,
    data_chunks: usize,
    done: bool,
}

impl DatasetStream<io::BufReader<std::fs::File>> {
    /// Opens a binary dataset file and decodes its Meta section (which is
    /// always the first chunk).
    pub fn open(path: &Path) -> Result<Self, StoreError> {
        let file = with_retry(|| std::fs::File::open(path)).map_err(|e| io_err(path, e))?;
        let mut stream = Self::from_reader_inner(io::BufReader::new(file), Some(path))?;
        stream.report.path = Some(path.display().to_string());
        Ok(stream)
    }
}

impl<R: Read> DatasetStream<R> {
    /// Opens a stream over any reader positioned at the start of a binary
    /// store image (header included) — in-memory buffers and pipes as
    /// well as files. Decodes the Meta section (always the first chunk).
    pub fn from_reader(reader: R) -> Result<Self, StoreError> {
        Self::from_reader_inner(reader, None)
    }

    fn from_reader_inner(mut reader: R, path: Option<&Path>) -> Result<Self, StoreError> {
        let err_path = path.unwrap_or_else(|| Path::new("<stream>"));
        let mut header = [0u8; HEADER_LEN];
        reader.read_exact(&mut header).map_err(|e| match e.kind() {
            io::ErrorKind::UnexpectedEof => StoreError::BadMagic,
            _ => io_err(err_path, e),
        })?;
        let version = check_header(&header)?;
        let mut crc = Crc32::new();
        crc.update(&header);
        let mut frames = FrameReader::new(reader, HEADER_LEN as u64, crc);

        let first = frames
            .next_frame()
            .map_err(|e| frame_error(e, path))?
            .ok_or(StoreError::MissingSection("meta"))?;
        if first.kind() != Some(SectionKind::Meta) {
            return Err(StoreError::MissingSection("meta (must be the first chunk)"));
        }
        if !first.crc_ok {
            return Err(StoreError::ChunkCorrupt {
                section: "meta".into(),
                index: first.index,
                offset: first.offset,
                reason: "payload CRC mismatch".into(),
            });
        }
        let meta = decode_meta(&first.payload).map_err(|e| StoreError::ChunkCorrupt {
            section: "meta".into(),
            index: first.index,
            offset: first.offset,
            reason: e.to_string(),
        })?;
        let mut report = StoreReport::new(&format!("binary-v{version}"));
        report.total_chunks = 1;
        report.chunks.push(ChunkStatus {
            section: "meta".into(),
            index: first.index,
            offset: first.offset,
            payload_len: first.payload.len() as u32,
            ok: true,
            error: None,
        });
        Ok(DatasetStream {
            frames,
            version,
            meta,
            report,
            data_chunks: 1,
            done: false,
        })
    }
}

impl<R: Read> DatasetStream<R> {
    /// The file's Meta section (grids, names, groups, sizes).
    #[must_use]
    pub fn meta(&self) -> &MetaSection {
        &self.meta
    }

    /// The file's header format version (1 or 2).
    #[must_use]
    pub fn version(&self) -> u32 {
        self.version
    }

    /// The running integrity report; complete once [`Self::next_chunk`]
    /// has returned `None`.
    #[must_use]
    pub fn report(&self) -> &StoreReport {
        &self.report
    }

    /// Yields the next intact chunk, skipping damaged skippable ones.
    /// Returns `None` at end of file (after footer validation).
    /// Frame-level damage (truncation, corrupt framing) ends the stream
    /// with the error recorded in the report.
    pub fn next_chunk(&mut self) -> Option<Result<StreamedChunk, StoreError>> {
        while !self.done {
            let frame = match self.frames.next_frame() {
                Ok(Some(f)) => f,
                Ok(None) => {
                    self.done = true;
                    if self.report.fatal.is_none() {
                        self.report.fatal = Some("footer missing".into());
                    }
                    return None;
                }
                Err(e) => {
                    self.done = true;
                    let err = frame_error(e, None);
                    self.report.fatal = Some(err.to_string());
                    mtd_telemetry::count("store.chunk.corrupt", 1);
                    return Some(Err(err));
                }
            };
            if frame.kind() == Some(SectionKind::Footer) {
                self.done = true;
                if frame.crc_ok {
                    if let Ok((count, stored_crc)) = parse_footer(&frame.payload) {
                        self.report.footer_ok =
                            count as usize == self.data_chunks && frame.index == count;
                        self.report.file_crc_ok = stored_crc == frame.file_crc_before;
                    }
                }
                return None;
            }
            self.data_chunks += 1;
            self.report.total_chunks = self.data_chunks;
            let section = frame.kind().map_or_else(
                || format!("unknown({})", frame.kind_tag),
                |k| k.name().into(),
            );
            let mut status = ChunkStatus {
                section: section.clone(),
                index: frame.index,
                offset: frame.offset,
                payload_len: frame.payload.len() as u32,
                ok: true,
                error: None,
            };
            let decoded: Result<StreamedChunk, String> = if !frame.crc_ok {
                Err("payload CRC mismatch".into())
            } else {
                match frame.kind() {
                    Some(SectionKind::Deciles) => decode_deciles(&frame.payload)
                        .map(StreamedChunk::Deciles)
                        .map_err(|e| e.to_string()),
                    Some(SectionKind::Cells) => decode_cells_chunk(&frame.payload, &self.meta)
                        .map(StreamedChunk::Cells)
                        .map_err(|e| e.to_string()),
                    Some(SectionKind::Minutes) => decode_minutes_chunk(&frame.payload, &self.meta)
                        .map(StreamedChunk::Minutes)
                        .map_err(|e| e.to_string()),
                    Some(SectionKind::Signaling) if self.version >= 2 => {
                        decode_signaling_chunk(&frame.payload, &self.meta)
                            .map(StreamedChunk::Signaling)
                            .map_err(|e| e.to_string())
                    }
                    Some(SectionKind::Signaling) => Err("signaling section in a v1 file".into()),
                    Some(SectionKind::Meta) => Err("duplicate meta section".into()),
                    Some(SectionKind::Footer) => unreachable!("handled above"),
                    None => Err(format!("unknown section tag {}", frame.kind_tag)),
                }
            };
            match decoded {
                Ok(chunk) => {
                    self.report.chunks.push(status);
                    return Some(Ok(chunk));
                }
                Err(reason) => {
                    // Skip-with-report: keep streaming past the damage.
                    mtd_telemetry::count("store.chunk.corrupt", 1);
                    mtd_telemetry::count("store.chunk.skipped", 1);
                    status.ok = false;
                    status.error = Some(reason);
                    self.report.corrupt_chunks += 1;
                    self.report.chunks.push(status);
                }
            }
        }
        None
    }
}

// ---------------------------------------------------------------------------
// Incremental assembly
// ---------------------------------------------------------------------------

/// Incrementally assembles a [`Dataset`] from streamed chunks — the
/// consumer-side counterpart of [`DatasetStream`]. `mtd-core`'s streamed
/// fit feeds chunks in as they arrive so peak extra memory is one chunk,
/// not the whole file image; the strict loader reuses the same assembly
/// rules so both paths produce identical datasets.
///
/// In strict mode, duplicate cell keys and doubly-covered minute rows are
/// errors; in tolerant mode later data wins and gaps are zero-filled.
pub struct DatasetAssembler {
    meta: MetaSection,
    strict: bool,
    deciles: Option<DecileSection>,
    cells: BTreeMap<CellKey, CellStats>,
    minute_counts: Vec<Vec<u32>>,
    minute_volume_mb: Vec<Vec<f32>>,
    covered: Vec<bool>,
    /// Lazily allocated on the first Signaling chunk; a file with none
    /// assembles into a plane-less (v1-equivalent) dataset.
    signaling: Option<SignalingPlane>,
    sig_covered: Vec<bool>,
}

impl DatasetAssembler {
    /// Starts assembly from a decoded Meta section (see
    /// [`DatasetStream::meta`]).
    #[must_use]
    pub fn new(meta: MetaSection, strict: bool) -> DatasetAssembler {
        let n_bs = meta.n_bs();
        let row_len = meta.minutes_per_row();
        DatasetAssembler {
            meta,
            strict,
            deciles: None,
            cells: BTreeMap::new(),
            minute_counts: vec![vec![0u32; row_len]; n_bs],
            minute_volume_mb: vec![vec![0.0f32; row_len]; n_bs],
            covered: vec![false; n_bs],
            signaling: None,
            sig_covered: vec![false; n_bs],
        }
    }

    fn set_deciles(&mut self, section: DecileSection) -> Result<(), String> {
        if self.deciles.is_some() {
            return Err("duplicate deciles section".into());
        }
        if section.decile_of_bs.len() != self.meta.n_bs() {
            return Err(format!(
                "meta has {} BSs, deciles section has {}",
                self.meta.n_bs(),
                section.decile_of_bs.len()
            ));
        }
        self.deciles = Some(section);
        Ok(())
    }

    fn add_cells(&mut self, batch: Vec<(CellKey, CellStats)>) -> Result<(), String> {
        for (key, stats) in batch {
            if self.cells.insert(key, stats).is_some() && self.strict {
                return Err("duplicate cell key".into());
            }
        }
        Ok(())
    }

    fn add_minutes(&mut self, block: MinuteBlock) -> Result<(), String> {
        for (row, (c, v)) in block.counts.into_iter().zip(block.volumes).enumerate() {
            let bs = block.first_bs as usize + row;
            if self.covered[bs] && self.strict {
                return Err(format!("BS {bs} covered twice"));
            }
            self.covered[bs] = true;
            self.minute_counts[bs] = c;
            self.minute_volume_mb[bs] = v;
        }
        Ok(())
    }

    fn add_signaling(&mut self, block: SignalBlock) -> Result<(), String> {
        let plane = self.signaling.get_or_insert_with(|| {
            SignalingPlane::zeroed(self.meta.n_bs(), self.meta.minutes_per_row())
        });
        for (row, ((a, h), p)) in block
            .attach
            .into_iter()
            .zip(block.handover)
            .zip(block.paging)
            .enumerate()
        {
            let bs = block.first_bs as usize + row;
            if self.sig_covered[bs] && self.strict {
                return Err(format!("BS {bs} signaling covered twice"));
            }
            self.sig_covered[bs] = true;
            plane.attach[bs] = a;
            plane.handover[bs] = h;
            plane.paging[bs] = p;
        }
        Ok(())
    }

    /// Folds one streamed chunk into the dataset under construction.
    pub fn apply(&mut self, chunk: StreamedChunk) -> Result<(), StoreError> {
        match chunk {
            StreamedChunk::Deciles(d) => self.set_deciles(d),
            StreamedChunk::Cells(batch) => self.add_cells(batch),
            StreamedChunk::Minutes(block) => self.add_minutes(block),
            StreamedChunk::Signaling(block) => self.add_signaling(block),
        }
        .map_err(StoreError::Inconsistent)
    }

    /// Finishes assembly, checking that every required piece arrived.
    pub fn finish(self) -> Result<Dataset, StoreError> {
        let deciles = self.deciles.ok_or(StoreError::MissingSection("deciles"))?;
        if self.strict && !self.covered.iter().all(|c| *c) {
            let missing = self.covered.iter().filter(|c| !**c).count();
            return Err(StoreError::Inconsistent(format!(
                "{missing} BS minute rows missing"
            )));
        }
        // A dataset either has a full signaling plane or none: partial
        // coverage in strict mode is an inconsistency (in tolerant mode
        // the uncovered rows stay zero, like minutes).
        if self.strict && self.signaling.is_some() && !self.sig_covered.iter().all(|c| *c) {
            let missing = self.sig_covered.iter().filter(|c| !**c).count();
            return Err(StoreError::Inconsistent(format!(
                "{missing} BS signaling rows missing"
            )));
        }
        Ok(Dataset {
            volume_grid: self.meta.volume_grid,
            duration_grid: self.meta.duration_grid,
            service_names: self.meta.service_names,
            groups: self.meta.groups,
            group_of_bs: self.meta.group_of_bs,
            decile_of_bs: deciles.decile_of_bs,
            bs_total_volume_mb: deciles.bs_total_volume_mb,
            cells: self.cells,
            minute_counts: self.minute_counts,
            minute_volume_mb: self.minute_volume_mb,
            n_days: self.meta.n_days,
            signaling: self.signaling,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::SliceFilter;
    use mtd_netsim::geo::Topology;
    use mtd_netsim::services::ServiceCatalog;
    use mtd_netsim::ScenarioConfig;
    use std::sync::OnceLock;

    fn build_small() -> &'static Dataset {
        static DS: OnceLock<Dataset> = OnceLock::new();
        DS.get_or_init(|| {
            let config = ScenarioConfig {
                n_bs: 6,
                days: 1,
                arrival_scale: 0.1,
                ..ScenarioConfig::small_test()
            };
            let topology = Topology::generate(config.n_bs, config.seed);
            let catalog = ServiceCatalog::paper();
            Dataset::build(&config, &topology, &catalog)
        })
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("mtd_dataset_store_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn json_roundtrip_preserves_queries() {
        let ds = build_small();
        let path = temp_path("ds.json");
        save_json(ds, &path).unwrap();
        let back = load_json(&path).unwrap();
        std::fs::remove_file(&path).ok();

        // The in-crate codec round-trips the dataset exactly.
        assert_eq!(&back, ds);
        let fb = ds.service_by_name("Facebook").unwrap();
        assert_eq!(
            back.sessions(fb, &SliceFilter::all()).to_bits(),
            ds.sessions(fb, &SliceFilter::all()).to_bits()
        );
    }

    #[test]
    fn load_json_distinguishes_missing_from_malformed() {
        // Missing file → NotFound.
        let missing = load_json(Path::new("/nonexistent/nope.json"));
        assert!(
            matches!(missing, Err(StoreError::NotFound(_))),
            "{missing:?}"
        );

        // Present but not a dataset → MalformedJson.
        let path = temp_path("garbage.json");
        std::fs::write(&path, b"{\"not\": \"a dataset\"}").unwrap();
        let malformed = load_json(&path);
        std::fs::remove_file(&path).ok();
        assert!(
            matches!(malformed, Err(StoreError::MalformedJson { .. })),
            "{malformed:?}"
        );

        // Not even JSON → also MalformedJson, not a panic.
        let path = temp_path("garbage.bin");
        std::fs::write(&path, [0xFFu8, 0x00, 0x13]).unwrap();
        let binary_junk = load_json(&path);
        std::fs::remove_file(&path).ok();
        assert!(matches!(binary_junk, Err(StoreError::MalformedJson { .. })));
    }

    #[test]
    fn binary_roundtrip_is_exact() {
        let ds = build_small();
        let bytes = encode_binary(ds, 1);
        let back = decode_binary(&bytes, 1).unwrap();
        assert_eq!(&back, ds);
        // Bit-exact: re-encoding the decoded dataset reproduces the bytes.
        assert_eq!(encode_binary(&back, 1), bytes);
    }

    #[test]
    fn store_writer_matches_encode_binary_bytes() {
        let ds = build_small();
        let expected = encode_binary(ds, 1);

        let path = temp_path("writer.mtdstore");
        let mut writer = StoreWriter::create(&path).unwrap();
        writer.append(SectionKind::Meta, &encode_meta(ds)).unwrap();
        writer
            .append(SectionKind::Deciles, &encode_deciles(ds))
            .unwrap();
        let vbins = ds.volume_grid.bins();
        let dbins = ds.duration_grid.bins();
        let cell_refs: Vec<(&CellKey, &CellStats)> = ds.cells.iter().collect();
        for batch in cell_refs.chunks(CELLS_PER_CHUNK) {
            writer
                .append(SectionKind::Cells, &encode_cells_chunk(batch, vbins, dbins))
                .unwrap();
        }
        let n_bs = ds.minute_counts.len();
        let mut first = 0;
        while first < n_bs {
            let rows = MINUTE_ROWS_PER_CHUNK.min(n_bs - first);
            writer
                .append(SectionKind::Minutes, &encode_minutes_chunk(ds, first, rows))
                .unwrap();
            first += rows;
        }
        let written = writer.finish().unwrap();

        let bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(written, bytes.len() as u64);
        assert_eq!(bytes, expected);
        // And it decodes like any other store.
        let back = decode_binary(&bytes, 1).unwrap();
        assert_eq!(&back, ds);
    }

    #[test]
    fn stream_from_reader_matches_full_decode() {
        let ds = build_small();
        let bytes = encode_binary(ds, 1);
        let mut stream = DatasetStream::from_reader(io::Cursor::new(bytes)).unwrap();
        let mut asm = DatasetAssembler::new(stream.meta().clone(), true);
        while let Some(chunk) = stream.next_chunk() {
            asm.apply(chunk.unwrap()).unwrap();
        }
        assert!(stream.report().fatal.is_none(), "{:?}", stream.report());
        let back = asm.finish().unwrap();
        assert_eq!(&back, ds);
    }

    #[test]
    fn store_writer_drop_cleans_up_temp_file() {
        let path = temp_path("abandoned.mtdstore");
        let tmp = path.with_extension("tmp-partial");
        {
            let mut writer = StoreWriter::create(&path).unwrap();
            writer.append(SectionKind::Meta, b"partial").unwrap();
            assert!(tmp.exists());
        }
        assert!(!tmp.exists(), "dropped writer must remove its temp file");
        assert!(!path.exists(), "abandoned write must not surface a store");
    }

    #[test]
    fn parallel_encode_and_decode_match_sequential() {
        let ds = build_small();
        let seq = encode_binary(ds, 1);
        for threads in [2, 4, 7] {
            assert_eq!(encode_binary(ds, threads), seq, "threads={threads}");
            assert_eq!(&decode_binary(&seq, threads).unwrap(), ds);
        }
    }

    #[test]
    fn small_files_decode_sequentially() {
        // Below either threshold the requested fan-out is demoted to one
        // worker; only big many-chunk files keep the parallel path.
        assert_eq!(effective_decode_threads(8, 23 << 20, 40), 1);
        assert_eq!(effective_decode_threads(8, PAR_DECODE_MIN_BYTES, 4), 1);
        assert_eq!(
            effective_decode_threads(8, PAR_DECODE_MIN_BYTES, PAR_DECODE_MIN_CHUNKS),
            8
        );
        assert_eq!(effective_decode_threads(0, PAR_DECODE_MIN_BYTES, 99), 1);
    }

    #[test]
    fn save_load_binary_file_roundtrip() {
        let ds = build_small();
        let path = temp_path("ds.bin");
        save_binary(ds, &path).unwrap();
        assert_eq!(detect_format(&path).unwrap(), Format::Binary);
        let back = load_binary(&path).unwrap();
        assert_eq!(&back, ds);
        // load_auto sniffs correctly for both formats.
        assert_eq!(&load_auto(&path).unwrap(), ds);
        let jpath = temp_path("ds_auto.json");
        save_json(ds, &jpath).unwrap();
        assert_eq!(detect_format(&jpath).unwrap(), Format::Json);
        assert_eq!(&load_auto(&jpath).unwrap(), ds);
        std::fs::remove_file(&jpath).ok();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn atomic_save_leaves_no_temp_file() {
        let ds = build_small();
        let path = temp_path("ds_atomic.bin");
        save_binary(ds, &path).unwrap();
        assert!(path.exists());
        assert!(!path.with_extension("tmp-partial").exists());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn verify_clean_file_reports_clean() {
        let ds = build_small();
        let path = temp_path("ds_verify.bin");
        save_binary(ds, &path).unwrap();
        let report = verify(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(report.is_clean(), "{}", report.to_json());
        assert!(report.total_chunks >= 3);
        assert_eq!(report.corrupt_chunks, 0);
    }

    #[test]
    fn tolerant_load_skips_damaged_cells_chunk() {
        let ds = build_small();
        let mut bytes = encode_binary(ds, 1);
        // Find the first Cells frame and flip a byte inside its payload.
        let offset = find_section_offset(&bytes, SectionKind::Cells);
        bytes[offset + crate::chunk::FRAME_HEADER_LEN + 10] ^= 0xFF;
        let path = temp_path("ds_damaged.bin");
        std::fs::write(&path, &bytes).unwrap();

        // Strict load refuses.
        assert!(load_binary(&path).is_err());
        // Tolerant load returns a dataset with fewer sessions + a report.
        let (recovered, report) = load_binary_tolerant(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(report.corrupt_chunks, 1);
        assert!(!report.is_clean());
        let fb = ds.service_by_name("Facebook").unwrap();
        let all = SliceFilter::all();
        assert!(recovered.sessions(fb, &all) <= ds.sessions(fb, &all));
    }

    /// Byte offset of the first frame of `kind` in a binary image.
    fn find_section_offset(bytes: &[u8], kind: SectionKind) -> usize {
        let mut crc = Crc32::new();
        crc.update(&bytes[..HEADER_LEN]);
        let mut frames = FrameReader::new(&bytes[HEADER_LEN..], HEADER_LEN as u64, crc);
        while let Ok(Some(f)) = frames.next_frame() {
            if f.kind() == Some(kind) {
                return f.offset as usize;
            }
        }
        panic!("section not found");
    }

    #[test]
    fn streaming_reader_yields_all_sections() {
        let ds = build_small();
        let path = temp_path("ds_stream.bin");
        save_binary(ds, &path).unwrap();
        let mut stream = DatasetStream::open(&path).unwrap();
        assert_eq!(stream.meta().n_bs(), ds.n_bs());
        assert_eq!(stream.meta().service_names.len(), ds.n_services());
        let (mut deciles, mut cells, mut minutes) = (0, 0usize, 0usize);
        while let Some(chunk) = stream.next_chunk() {
            match chunk.unwrap() {
                StreamedChunk::Deciles(d) => {
                    deciles += 1;
                    assert_eq!(d.decile_of_bs.len(), ds.n_bs());
                }
                StreamedChunk::Cells(batch) => cells += batch.len(),
                StreamedChunk::Minutes(block) => minutes += block.counts.len(),
                StreamedChunk::Signaling(_) => panic!("v1 dataset has no signaling"),
            }
        }
        std::fs::remove_file(&path).ok();
        assert_eq!(deciles, 1);
        assert_eq!(cells, ds.cells.len());
        assert_eq!(minutes, ds.n_bs());
        assert!(stream.report().is_clean(), "{}", stream.report().to_json());
    }

    fn build_small_v2() -> &'static Dataset {
        static DS: OnceLock<Dataset> = OnceLock::new();
        DS.get_or_init(|| {
            let config = ScenarioConfig {
                n_bs: 6,
                days: 1,
                arrival_scale: 0.1,
                stress: mtd_netsim::StressConfig {
                    control_plane: true,
                    ..mtd_netsim::StressConfig::default()
                },
                ..ScenarioConfig::small_test()
            };
            let topology = Topology::generate(config.n_bs, config.seed);
            let catalog = ServiceCatalog::paper();
            Dataset::build(&config, &topology, &catalog)
        })
    }

    #[test]
    fn signaling_dataset_encodes_v2_and_roundtrips_exactly() {
        let ds = build_small_v2();
        assert!(ds.signaling().is_some());
        let bytes = encode_binary(ds, 1);
        assert_eq!(
            u32::from_le_bytes(bytes[8..12].try_into().unwrap()),
            MAX_FORMAT_VERSION
        );
        let back = decode_binary(&bytes, 1).unwrap();
        assert_eq!(&back, ds);
        assert_eq!(encode_binary(&back, 1), bytes);
        // Streamed assembly reproduces the plane too.
        let mut stream = DatasetStream::from_reader(io::Cursor::new(bytes.clone())).unwrap();
        assert_eq!(stream.version(), MAX_FORMAT_VERSION);
        let mut asm = DatasetAssembler::new(stream.meta().clone(), true);
        while let Some(chunk) = stream.next_chunk() {
            asm.apply(chunk.unwrap()).unwrap();
        }
        assert_eq!(&asm.finish().unwrap(), ds);
        // The report labels the file with its own version.
        assert_eq!(verify_bytes(&bytes).format, "binary-v2");
        // Parallel encode stays byte-identical with the extra section.
        for threads in [2, 7] {
            assert_eq!(encode_binary(ds, threads), bytes, "threads={threads}");
        }
    }

    #[test]
    fn plane_less_datasets_still_write_v1_bytes() {
        // The format-growth contract: a dataset without the new plane is
        // byte-for-byte a v1 file (golden_format.rs pins this against a
        // committed fixture; this pins the header + report label).
        let ds = build_small();
        assert!(ds.signaling().is_none());
        let bytes = encode_binary(ds, 1);
        assert_eq!(u32::from_le_bytes(bytes[8..12].try_into().unwrap()), 1);
        assert_eq!(verify_bytes(&bytes).format, "binary-v1");
    }

    #[test]
    fn signaling_tag_in_v1_file_is_corrupt() {
        // Hand-build a v1 image containing a (valid-looking) Signaling
        // frame: readers must treat it as corruption, not data — the tag
        // does not exist in v1.
        let ds = build_small_v2();
        let v2 = encode_binary(ds, 1);
        let mut v1 = v2.clone();
        v1[8..12].copy_from_slice(&1u32.to_le_bytes());
        // Strict decode refuses; tolerant decode drops the plane.
        assert!(decode_binary(&v1, 1).is_err());
        let (recovered, report) = decode_binary_tolerant(&v1).unwrap();
        assert!(recovered.signaling().is_none());
        assert!(report.corrupt_chunks > 0);
        assert!(report
            .chunks
            .iter()
            .any(|c| c.section == "signaling" && !c.ok));
    }

    #[test]
    fn tolerant_load_skips_damaged_signaling_chunk() {
        let ds = build_small_v2();
        let mut bytes = encode_binary(ds, 1);
        let offset = find_section_offset(&bytes, SectionKind::Signaling);
        bytes[offset + crate::chunk::FRAME_HEADER_LEN + 14] ^= 0xFF;
        assert!(decode_binary(&bytes, 1).is_err());
        let (recovered, report) = decode_binary_tolerant(&bytes).unwrap();
        assert_eq!(report.corrupt_chunks, 1);
        // User plane intact; this small dataset has a single signaling
        // chunk, so dropping it loses the whole plane (a bigger file
        // would keep the surviving blocks, zero-filling the gap).
        assert_eq!(recovered.minute_counts, ds.minute_counts);
        assert!(recovered.signaling().is_none());
    }

    #[test]
    fn versioned_writer_matches_encode_binary_for_v2() {
        let ds = build_small_v2();
        let expected = encode_binary(ds, 1);
        let path = temp_path("writer_v2.mtdstore");
        let mut writer = StoreWriter::create_versioned(&path, MAX_FORMAT_VERSION).unwrap();
        writer.append(SectionKind::Meta, &encode_meta(ds)).unwrap();
        writer
            .append(SectionKind::Deciles, &encode_deciles(ds))
            .unwrap();
        let cell_refs: Vec<(&CellKey, &CellStats)> = ds.cells.iter().collect();
        for batch in cell_refs.chunks(CELLS_PER_CHUNK) {
            writer
                .append(
                    SectionKind::Cells,
                    &encode_cells_chunk(batch, ds.volume_grid.bins(), ds.duration_grid.bins()),
                )
                .unwrap();
        }
        let n_bs = ds.minute_counts.len();
        let mut first = 0;
        while first < n_bs {
            let rows = MINUTE_ROWS_PER_CHUNK.min(n_bs - first);
            writer
                .append(SectionKind::Minutes, &encode_minutes_chunk(ds, first, rows))
                .unwrap();
            first += rows;
        }
        let plane = ds.signaling().unwrap();
        let mut first = 0;
        while first < plane.n_bs() {
            let rows = MINUTE_ROWS_PER_CHUNK.min(plane.n_bs() - first);
            writer
                .append(
                    SectionKind::Signaling,
                    &encode_signaling_chunk(plane, first, rows),
                )
                .unwrap();
            first += rows;
        }
        writer.finish().unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(bytes, expected);
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        assert!(matches!(
            decode_binary(b"not a dataset at all", 1),
            Err(StoreError::BadMagic)
        ));
        let ds = build_small();
        let mut bytes = encode_binary(ds, 1);
        bytes[8] = 99; // version 99
        assert!(matches!(
            decode_binary(&bytes, 1),
            Err(StoreError::UnsupportedVersion { found: 99, .. })
        ));
    }

    #[test]
    fn empty_and_truncated_files_error_cleanly() {
        assert!(decode_binary(b"", 1).is_err());
        let ds = build_small();
        let bytes = encode_binary(ds, 1);
        for cut in [HEADER_LEN, HEADER_LEN + 5, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_binary(&bytes[..cut], 1).is_err(), "cut at {cut}");
        }
    }
}
