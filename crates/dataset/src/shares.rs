//! Streaming accumulator for Table 1's share Coefficients of Variation.
//!
//! Table 1 reports, per service, the session/traffic share together with
//! its CV "across BSs and minutes". Computing that exactly from stored
//! data would require per-(service, BS, minute) counts — prohibitive at
//! scale, and unnecessary: the CV needs only `Σx`, `Σx²`, `N` per service
//! over the (BS, minute) cells. This sink accumulates exactly those online
//! while the engine runs.
//!
//! Only origin fragments (`segment_index == 0`) are counted, so the
//! per-minute bucketing matches the engine's generation order; handover
//! fragments (a few percent of arrivals, uniformly spread) are excluded,
//! which the Table 1 experiment documents.

use mtd_netsim::engine::EngineSink;
use mtd_netsim::session::SessionObservation;
use mtd_netsim::time::MINUTES_PER_DAY;

/// Per-service running moments of per-minute shares.
#[derive(Debug, Clone)]
struct Moments {
    sum: f64,
    sum_sq: f64,
    n: f64,
}

/// One row of the Table 1 reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct ShareRow {
    pub service: u16,
    /// Mean per-minute session share of the service.
    pub session_share: f64,
    /// CV of the per-minute session share across (BS, minute) cells.
    pub session_cv: f64,
    /// Mean per-minute traffic share.
    pub traffic_share: f64,
    /// CV of the per-minute traffic share.
    pub traffic_cv: f64,
}

/// Accumulates per-(BS, minute) service shares while the engine runs.
#[derive(Debug)]
pub struct SharesAccumulator {
    n_services: usize,
    /// Counts in the currently-open (bs, day, minute) bucket.
    bucket_counts: Vec<f64>,
    bucket_traffic: Vec<f64>,
    bucket_key: Option<(u32, u32, u32)>,
    session_moments: Vec<Moments>,
    traffic_moments: Vec<Moments>,
    total_sessions: Vec<f64>,
    total_traffic: Vec<f64>,
}

impl SharesAccumulator {
    /// Creates an accumulator for `n_services` services.
    #[must_use]
    pub fn new(n_services: usize) -> SharesAccumulator {
        SharesAccumulator {
            n_services,
            bucket_counts: vec![0.0; n_services],
            bucket_traffic: vec![0.0; n_services],
            bucket_key: None,
            session_moments: vec![
                Moments {
                    sum: 0.0,
                    sum_sq: 0.0,
                    n: 0.0
                };
                n_services
            ],
            traffic_moments: vec![
                Moments {
                    sum: 0.0,
                    sum_sq: 0.0,
                    n: 0.0
                };
                n_services
            ],
            total_sessions: vec![0.0; n_services],
            total_traffic: vec![0.0; n_services],
        }
    }

    fn flush_bucket(&mut self) {
        let sessions: f64 = self.bucket_counts.iter().sum();
        if sessions > 0.0 {
            let traffic: f64 = self.bucket_traffic.iter().sum();
            for s in 0..self.n_services {
                let share = self.bucket_counts[s] / sessions;
                let m = &mut self.session_moments[s];
                m.sum += share;
                m.sum_sq += share * share;
                m.n += 1.0;
                if traffic > 0.0 {
                    let tshare = self.bucket_traffic[s] / traffic;
                    let t = &mut self.traffic_moments[s];
                    t.sum += tshare;
                    t.sum_sq += tshare * tshare;
                    t.n += 1.0;
                }
            }
        }
        self.bucket_counts.iter_mut().for_each(|c| *c = 0.0);
        self.bucket_traffic.iter_mut().for_each(|c| *c = 0.0);
    }

    /// Finalizes and returns the Table 1 rows, sorted by session share.
    #[must_use]
    pub fn finish(mut self) -> Vec<ShareRow> {
        self.flush_bucket();
        let grand_sessions: f64 = self.total_sessions.iter().sum();
        let grand_traffic: f64 = self.total_traffic.iter().sum();
        let cv = |m: &Moments| -> f64 {
            if m.n < 2.0 {
                return 0.0;
            }
            let mean = m.sum / m.n;
            if mean <= 0.0 {
                return 0.0;
            }
            let var = (m.sum_sq / m.n - mean * mean).max(0.0);
            var.sqrt() / mean
        };
        let mut rows: Vec<ShareRow> = (0..self.n_services)
            .map(|s| ShareRow {
                service: s as u16,
                session_share: self.total_sessions[s] / grand_sessions.max(1e-300),
                session_cv: cv(&self.session_moments[s]),
                traffic_share: self.total_traffic[s] / grand_traffic.max(1e-300),
                traffic_cv: cv(&self.traffic_moments[s]),
            })
            .collect();
        rows.sort_by(|a, b| b.session_share.total_cmp(&a.session_share));
        rows
    }
}

impl EngineSink for SharesAccumulator {
    fn on_observation(&mut self, obs: &SessionObservation) {
        if obs.segment_index != 0 {
            return;
        }
        let key = (obs.bs.0, obs.start.day, obs.start.minute_of_day());
        if self.bucket_key != Some(key) {
            self.flush_bucket();
            self.bucket_key = Some(key);
        }
        let s = obs.service.0 as usize;
        self.bucket_counts[s] += 1.0;
        self.bucket_traffic[s] += obs.volume_mb;
        self.total_sessions[s] += 1.0;
        self.total_traffic[s] += obs.volume_mb;
        let _ = MINUTES_PER_DAY; // (kept for unit clarity in docs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtd_netsim::engine::Engine;
    use mtd_netsim::geo::Topology;
    use mtd_netsim::services::ServiceCatalog;
    use mtd_netsim::ScenarioConfig;

    fn run() -> (Vec<ShareRow>, ServiceCatalog) {
        let config = ScenarioConfig::small_test();
        let topology = Topology::generate(config.n_bs, config.seed);
        let catalog = ServiceCatalog::paper();
        let engine = Engine::new(&config, &topology, &catalog);
        let mut acc = SharesAccumulator::new(catalog.len());
        engine.run(&mut acc);
        (acc.finish(), catalog)
    }

    #[test]
    fn shares_sum_to_one_and_match_catalog() {
        let (rows, catalog) = run();
        let total: f64 = rows.iter().map(|r| r.session_share).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Top service is Facebook with ~36.5%.
        let top = &rows[0];
        assert_eq!(
            catalog.service(mtd_netsim::ServiceId(top.service)).name,
            "Facebook"
        );
        assert!((top.session_share - 0.365).abs() < 0.03);
    }

    #[test]
    fn cvs_are_positive_and_ordered_sensibly() {
        let (rows, _) = run();
        // Table 1: session-share CVs cluster near ~1, traffic CVs
        // fluctuate more. With per-minute buckets the shares of rare
        // services are extremely bursty, hence large CVs; common services
        // have smaller ones. Check the qualitative ordering.
        let top = &rows[0];
        let rare = rows.iter().rfind(|r| r.session_share > 0.0).unwrap();
        assert!(top.session_cv > 0.0);
        assert!(rare.session_cv > top.session_cv);
    }

    #[test]
    fn traffic_share_decoupled_from_session_share() {
        // §4.2 / Fig 4: similarly-ranked services carry very different
        // traffic. Netflix: small session share, large traffic share.
        let (rows, catalog) = run();
        let nf_id = catalog.by_name("Netflix").unwrap().id.0;
        let nf = rows.iter().find(|r| r.service == nf_id).unwrap();
        assert!(
            nf.traffic_share > 3.0 * nf.session_share,
            "netflix traffic {} vs sessions {}",
            nf.traffic_share,
            nf.session_share
        );
    }
}
