//! The TCP daemon: a nonblocking accept loop plus N connection workers,
//! all running as long-lived jobs on one [`mtd_par::Pool`] scope.
//!
//! Backpressure policy (DESIGN.md §15): accepted connections enter a
//! bounded queue; when the queue is full the connection receives a
//! structured `overloaded` error frame and is closed — never silently
//! dropped. Per-connection I/O carries a timeout so a stalled peer
//! cannot pin a worker forever. Shutdown (`{"op":"shutdown"}` or
//! [`ServerHandle::shutdown`]) stops the accept loop, drains the queue,
//! finishes in-flight connections, and joins every worker.

use crate::protocol::{self, ErrorCode, Request, RequestFrame};
use mtd_core::ServingPlan;
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Daemon configuration; `Default` gives sane local-use values.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7979` (port 0 picks a free port).
    pub addr: String,
    /// Connection-handling workers (the pool runs `workers + 1` jobs:
    /// these plus the accept loop).
    pub workers: usize,
    /// Accepted connections waiting for a worker before new arrivals
    /// are refused with an `overloaded` frame.
    pub max_pending: usize,
    /// Per-request cap on generated sessions (0 = unlimited); larger
    /// windows get a `too_large` frame.
    pub max_sessions: u64,
    /// Longest accepted request line, bytes.
    pub max_line_bytes: usize,
    /// Per-connection read/write timeout, seconds.
    pub io_timeout_s: f64,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            max_pending: 64,
            max_sessions: 5_000_000,
            max_line_bytes: 1 << 20,
            io_timeout_s: 30.0,
        }
    }
}

/// Counters reported when the daemon exits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests answered (ok frames).
    pub requests: u64,
    /// Error frames written (bad requests, too-large windows, ...).
    pub errors: u64,
    /// Connections refused with an `overloaded` frame.
    pub rejected: u64,
    /// Sessions generated across all `sample` responses.
    pub sessions: u64,
}

struct Shared {
    plan: ServingPlan,
    config: ServeConfig,
    shutdown: AtomicBool,
    queue: Mutex<VecDeque<TcpStream>>,
    cv: Condvar,
    requests: AtomicU64,
    errors: AtomicU64,
    rejected: AtomicU64,
    sessions: AtomicU64,
    /// Seed source for unseeded sample requests (responses echo the
    /// assigned seed, but assignment order depends on scheduling — only
    /// explicit seeds are deterministic).
    seed_counter: AtomicU64,
}

impl Shared {
    fn stats(&self) -> ServeStats {
        ServeStats {
            requests: self.requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            sessions: self.sessions.load(Ordering::Relaxed),
        }
    }
}

/// A running daemon. Dropping the handle shuts the daemon down and
/// joins it; use [`ServerHandle::shutdown`] + [`ServerHandle::join`]
/// for an orderly stop that returns the final counters.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the actual port).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests a graceful stop: no new connections, queued and
    /// in-flight connections finish.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.cv_notify();
    }

    fn cv_notify(&self) {
        let _guard = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        self.shared.cv.notify_all();
    }

    /// Shuts down (if not already requested) and waits for the daemon
    /// to exit, returning its final counters.
    pub fn join(mut self) -> ServeStats {
        self.shutdown();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        self.shared.stats()
    }

    /// Blocks until the daemon exits on its own (a protocol
    /// `shutdown` request), returning its final counters. Unlike
    /// [`join`](ServerHandle::join), this does not request shutdown —
    /// it is how `mtd-traffic serve` parks its main thread.
    pub fn wait(mut self) -> ServeStats {
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        self.shared.stats()
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Binds the listener and starts the daemon on a background thread.
pub fn start(plan: ServingPlan, config: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    // Unseeded requests get distinct seeds per process; derive the base
    // from wall time so two daemon runs don't replay each other.
    let seed_base = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let workers = config.workers.max(1);
    let shared = Arc::new(Shared {
        plan,
        config,
        shutdown: AtomicBool::new(false),
        queue: Mutex::new(VecDeque::new()),
        cv: Condvar::new(),
        requests: AtomicU64::new(0),
        errors: AtomicU64::new(0),
        rejected: AtomicU64::new(0),
        sessions: AtomicU64::new(0),
        seed_counter: AtomicU64::new(seed_base),
    });
    let shared_for_thread = Arc::clone(&shared);
    let thread = std::thread::Builder::new()
        .name("mtd-serve".into())
        .spawn(move || {
            mtd_telemetry::heartbeat::set_stage("serve");
            // One long-lived job per pool worker: the accept loop plus
            // `workers` connection handlers. The pool seeds jobs
            // round-robin, so with workers+1 threads every job runs
            // concurrently for the life of the daemon.
            let pool = mtd_par::Pool::new(workers + 1);
            let shared = &shared_for_thread;
            pool.scope(|scope| {
                scope.spawn(|| accept_loop(&listener, shared));
                for _ in 0..workers {
                    scope.spawn(|| handler_loop(shared));
                }
            });
        })?;
    Ok(ServerHandle {
        addr,
        shared,
        thread: Some(thread),
    })
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => enqueue(stream, shared),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    // Wake every handler so they observe the flag and drain out.
    let _guard = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
    shared.cv.notify_all();
}

fn enqueue(mut stream: TcpStream, shared: &Shared) {
    let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
    if queue.len() >= shared.config.max_pending {
        drop(queue);
        shared.rejected.fetch_add(1, Ordering::Relaxed);
        mtd_telemetry::count("serve.rejected", 1);
        // Backpressure is explicit: a structured frame, not a dropped
        // connection.
        let frame = protocol::error_frame(
            None,
            ErrorCode::Overloaded,
            "accept queue full; retry later",
        );
        let _ = stream.write_all(frame.as_bytes());
        let _ = stream.write_all(b"\n");
        return;
    }
    queue.push_back(stream);
    shared.cv.notify_one();
}

fn handler_loop(shared: &Shared) {
    loop {
        let next = {
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(stream) = queue.pop_front() {
                    break Some(stream);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                let (q, _timeout) = shared
                    .cv
                    .wait_timeout(queue, Duration::from_millis(100))
                    .unwrap_or_else(|e| e.into_inner());
                queue = q;
            }
        };
        match next {
            Some(stream) => handle_connection(stream, shared),
            None => return,
        }
    }
}

fn handle_connection(stream: TcpStream, shared: &Shared) {
    let timeout = Duration::from_secs_f64(shared.config.io_timeout_s.max(0.01));
    let _ = stream.set_read_timeout(Some(timeout));
    let _ = stream.set_write_timeout(Some(timeout));
    // Each response is one small write; with Nagle on, request/response
    // round-trips stall on the peer's delayed ACK (~40 ms per request).
    let _ = stream.set_nodelay(true);
    let Ok(mut writer) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    loop {
        let line = match read_line_capped(&mut reader, shared.config.max_line_bytes) {
            Ok(Some(line)) => line,
            Ok(None) => return, // EOF: client is done
            Err(TooLong) => {
                shared.errors.fetch_add(1, Ordering::Relaxed);
                let frame = protocol::error_frame(
                    None,
                    ErrorCode::TooLarge,
                    &format!(
                        "request line exceeds {} bytes",
                        shared.config.max_line_bytes
                    ),
                );
                let _ = writer.write_all(frame.as_bytes());
                let _ = writer.write_all(b"\n");
                return; // framing is lost; drop the connection
            }
            Err(Io(_)) => return, // timeout or reset
        };
        if line.trim().is_empty() {
            continue;
        }
        let mut response = handle_request(&line, shared);
        response.push('\n');
        if writer.write_all(response.as_bytes()).is_err() {
            return;
        }
        let _ = writer.flush();
    }
}

/// Dispatches one request line to a response frame, updating counters.
fn handle_request(line: &str, shared: &Shared) -> String {
    let _span = mtd_telemetry::span!("serve.request");
    let frame = match protocol::parse_request(line) {
        Ok(frame) => frame,
        Err((code, message)) => {
            shared.errors.fetch_add(1, Ordering::Relaxed);
            mtd_telemetry::count("serve.errors", 1);
            return protocol::error_frame(None, code, &message);
        }
    };
    let RequestFrame { id, request } = frame;
    let id = id.as_deref();
    let result = match request {
        Request::Ping => Ok(protocol::render_ping(id)),
        Request::Stats => Ok(protocol::render_stats(&shared.plan, id)),
        Request::Params => Ok(protocol::render_params(&shared.plan, id)),
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            let _guard = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            shared.cv.notify_all();
            Ok(protocol::render_shutdown(id))
        }
        Request::Sample(req) => {
            let seed = req.seed.unwrap_or_else(|| {
                // SplitMix64-style increment keeps assigned seeds spread
                // out even though they come from a plain counter.
                shared
                    .seed_counter
                    .fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed)
            });
            protocol::render_sample(&shared.plan, id, &req, seed, shared.config.max_sessions).map(
                |(frame, generated)| {
                    shared.sessions.fetch_add(generated, Ordering::Relaxed);
                    mtd_telemetry::count("serve.sessions", generated);
                    mtd_telemetry::observe("serve.request.sessions", generated as f64);
                    frame
                },
            )
        }
    };
    match result {
        Ok(frame) => {
            shared.requests.fetch_add(1, Ordering::Relaxed);
            mtd_telemetry::count("serve.requests", 1);
            frame
        }
        Err((code, message)) => {
            shared.errors.fetch_add(1, Ordering::Relaxed);
            mtd_telemetry::count("serve.errors", 1);
            protocol::error_frame(id, code, &message)
        }
    }
}

use ReadError::{Io, TooLong};

enum ReadError {
    TooLong,
    Io(#[allow(dead_code)] std::io::Error),
}

/// Reads one `\n`-terminated line, refusing lines longer than `cap`
/// (protects the daemon from unbounded buffering on hostile input).
/// Returns `Ok(None)` on clean EOF.
fn read_line_capped<R: BufRead>(reader: &mut R, cap: usize) -> Result<Option<String>, ReadError> {
    let mut acc: Vec<u8> = Vec::new();
    loop {
        let buf = match reader.fill_buf() {
            Ok(buf) => buf,
            Err(e) => return Err(Io(e)),
        };
        if buf.is_empty() {
            return if acc.is_empty() {
                Ok(None)
            } else {
                Ok(Some(String::from_utf8_lossy(&acc).into_owned()))
            };
        }
        if let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            if acc.len() + pos > cap {
                return Err(TooLong);
            }
            acc.extend_from_slice(&buf[..pos]);
            reader.consume(pos + 1);
            return Ok(Some(String::from_utf8_lossy(&acc).into_owned()));
        }
        let n = buf.len();
        if acc.len() + n > cap {
            return Err(TooLong);
        }
        acc.extend_from_slice(buf);
        reader.consume(n);
    }
}
