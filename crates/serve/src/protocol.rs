//! Request parsing and response rendering for the serve wire protocol.
//!
//! One request per line, one response per line (`\n`-delimited JSON),
//! documented in DESIGN.md §15. Responses are rendered with a fixed
//! field order and Rust's shortest-round-trip float formatting, so a
//! seeded `sample` response is byte-identical across runs, platforms,
//! and worker counts — the determinism contract clients can diff
//! against.

use crate::json::{num, quote, Json};
use mtd_core::ServingPlan;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Machine-readable error codes carried in error frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Malformed JSON, unknown op, or invalid parameters.
    BadRequest,
    /// The request would exceed a configured size bound.
    TooLarge,
    /// The accept queue is full; retry later.
    Overloaded,
    /// The daemon is draining after a shutdown request.
    ShuttingDown,
}

impl ErrorCode {
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::TooLarge => "too_large",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::ShuttingDown => "shutting_down",
        }
    }
}

/// A parsed request frame: the operation plus the echoed-back id.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestFrame {
    /// Client correlation id, echoed verbatim (any JSON scalar).
    pub id: Option<String>,
    pub request: Request,
}

/// The operations the daemon answers.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    Ping,
    Stats,
    Params,
    Sample(SampleRequest),
    Shutdown,
}

/// Parameters of a `sample` request.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleRequest {
    /// BS load decile, 0..=9.
    pub decile: u8,
    /// First minute of the window, 0..1440.
    pub minute: u32,
    /// Window length in minutes; `minute + minutes <= 1440`.
    pub minutes: u32,
    /// Explicit seed ⇒ byte-identical replay. `None` ⇒ the server
    /// assigns a fresh seed (echoed in the response).
    pub seed: Option<u64>,
    /// Restrict the response to one service by name. The filter is
    /// applied *after* generation, so it never changes the draw
    /// sequence: the same seed yields the same underlying stream
    /// whether or not a filter is present.
    pub service: Option<String>,
}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<RequestFrame, (ErrorCode, String)> {
    let bad = |m: String| (ErrorCode::BadRequest, m);
    let v = Json::parse(line).map_err(|e| bad(format!("invalid JSON: {e}")))?;
    if !matches!(v, Json::Obj(_)) {
        return Err(bad("request must be a JSON object".into()));
    }
    let id = match v.get("id") {
        None => None,
        Some(j @ (Json::Null | Json::Bool(_) | Json::Num(_) | Json::Str(_))) => Some(j.render()),
        Some(_) => return Err(bad("id must be a JSON scalar".into())),
    };
    let op = v
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("missing string field `op`".into()))?;
    let request = match op {
        "ping" => Request::Ping,
        "stats" => Request::Stats,
        "params" => Request::Params,
        "shutdown" => Request::Shutdown,
        "sample" => {
            let decile = match v.get("decile") {
                Some(j) => j
                    .as_u64()
                    .filter(|&d| d <= 9)
                    .ok_or_else(|| bad("decile must be an integer in 0..=9".into()))?
                    as u8,
                None => return Err(bad("sample needs a `decile` field".into())),
            };
            let minute = match v.get("minute") {
                Some(j) => j
                    .as_u64()
                    .filter(|&m| m < 1440)
                    .ok_or_else(|| bad("minute must be an integer in 0..1440".into()))?
                    as u32,
                None => 0,
            };
            let minutes = match v.get("minutes") {
                Some(j) => j
                    .as_u64()
                    .filter(|&m| m >= 1)
                    .ok_or_else(|| bad("minutes must be a positive integer".into()))?
                    as u32,
                None => 1,
            };
            if u64::from(minute) + u64::from(minutes) > 1440 {
                return Err(bad(format!(
                    "window [{minute}, {minute}+{minutes}) runs past minute 1440"
                )));
            }
            let seed = match v.get("seed") {
                Some(j) => Some(
                    j.as_u64()
                        .ok_or_else(|| bad("seed must be a non-negative integer".into()))?,
                ),
                None => None,
            };
            let service = match v.get("service") {
                Some(j) => Some(
                    j.as_str()
                        .ok_or_else(|| bad("service must be a string".into()))?
                        .to_string(),
                ),
                None => None,
            };
            Request::Sample(SampleRequest {
                decile,
                minute,
                minutes,
                seed,
                service,
            })
        }
        other => return Err(bad(format!("unknown op `{other}`"))),
    };
    Ok(RequestFrame { id, request })
}

/// Renders the `"id":...,` fragment (empty when the request had none).
fn id_field(id: Option<&str>) -> String {
    id.map(|i| format!("\"id\":{i},")).unwrap_or_default()
}

/// Renders an error frame.
#[must_use]
pub fn error_frame(id: Option<&str>, code: ErrorCode, message: &str) -> String {
    format!(
        "{{\"ok\":false,{}\"error\":{{\"code\":{},\"message\":{}}}}}",
        id_field(id),
        quote(code.as_str()),
        quote(message)
    )
}

#[must_use]
pub fn render_ping(id: Option<&str>) -> String {
    format!("{{\"ok\":true,{}\"op\":\"ping\"}}", id_field(id))
}

#[must_use]
pub fn render_shutdown(id: Option<&str>) -> String {
    format!("{{\"ok\":true,{}\"op\":\"shutdown\"}}", id_field(id))
}

/// Registry-level statistics: service names, shares, decile count.
#[must_use]
pub fn render_stats(plan: &ServingPlan, id: Option<&str>) -> String {
    let registry = plan.registry();
    let names: Vec<String> = registry.services.iter().map(|s| quote(&s.name)).collect();
    let shares: Vec<String> = registry
        .services
        .iter()
        .map(|s| num(s.session_share))
        .collect();
    format!(
        "{{\"ok\":true,{}\"op\":\"stats\",\"services\":{},\"deciles\":{},\
         \"names\":[{}],\"session_shares\":[{}]}}",
        id_field(id),
        registry.services.len(),
        plan.n_deciles(),
        names.join(","),
        shares.join(",")
    )
}

/// The released per-service parameter tuples (§5.4) plus the per-decile
/// arrival models.
#[must_use]
pub fn render_params(plan: &ServingPlan, id: Option<&str>) -> String {
    let registry = plan.registry();
    let services: Vec<String> = registry
        .services
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let peaks: Vec<String> = s
                .peaks
                .iter()
                .map(|p| {
                    format!(
                        "{{\"k\":{},\"mu\":{},\"sigma\":{}}}",
                        num(p.k),
                        num(p.mu),
                        num(p.sigma)
                    )
                })
                .collect();
            format!(
                "{{\"index\":{i},\"name\":{},\"mu\":{},\"sigma\":{},\"peaks\":[{}],\
                 \"alpha\":{},\"beta\":{},\"session_share\":{}}}",
                quote(&s.name),
                num(s.mu),
                num(s.sigma),
                peaks.join(","),
                num(s.alpha),
                num(s.beta),
                num(s.session_share)
            )
        })
        .collect();
    let arrivals: Vec<String> = registry
        .arrivals
        .per_decile
        .iter()
        .enumerate()
        .map(|(d, a)| {
            format!(
                "{{\"decile\":{d},\"peak_mu\":{},\"peak_sigma\":{},\
                 \"pareto_shape\":{},\"pareto_scale\":{}}}",
                num(a.peak_mu),
                num(a.peak_sigma),
                num(a.pareto_shape),
                num(a.pareto_scale)
            )
        })
        .collect();
    format!(
        "{{\"ok\":true,{}\"op\":\"params\",\"services\":[{}],\"arrivals\":[{}]}}",
        id_field(id),
        services.join(","),
        arrivals.join(",")
    )
}

/// Renders a `sample` response, generating the window with the given
/// seed. `max_sessions` bounds the response (0 = unlimited); exceeding
/// it is a `too_large` error, not a truncated stream.
pub fn render_sample(
    plan: &ServingPlan,
    id: Option<&str>,
    req: &SampleRequest,
    seed: u64,
    max_sessions: u64,
) -> Result<(String, u64), (ErrorCode, String)> {
    let service_filter = match &req.service {
        None => None,
        Some(name) => Some(
            plan.registry()
                .services
                .iter()
                .position(|s| s.name == *name)
                .map(|i| i as u16)
                .ok_or_else(|| {
                    (
                        ErrorCode::BadRequest,
                        format!("unknown service `{name}` (see the stats op for names)"),
                    )
                })?,
        ),
    };
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut body = String::new();
    let mut generated: u64 = 0;
    let mut kept: u64 = 0;
    for minute in req.minute..req.minute + req.minutes {
        for s in plan.generate_minute(req.decile, minute, &mut rng) {
            generated += 1;
            if max_sessions > 0 && generated > max_sessions {
                return Err((
                    ErrorCode::TooLarge,
                    format!(
                        "window generates more than {max_sessions} sessions; \
                         request a shorter window or raise --max-sessions"
                    ),
                ));
            }
            if service_filter.is_some_and(|f| f != s.service) {
                continue;
            }
            if kept > 0 {
                body.push(',');
            }
            kept += 1;
            body.push_str(&format!(
                "{{\"start_s\":{},\"service\":{},\"volume_mb\":{},\
                 \"duration_s\":{},\"throughput_mbps\":{}}}",
                num(s.start_s),
                s.service,
                num(s.volume_mb),
                num(s.duration_s),
                num(s.throughput_mbps)
            ));
        }
    }
    let frame = format!(
        "{{\"ok\":true,{}\"op\":\"sample\",\"seed\":{seed},\"decile\":{},\
         \"minute\":{},\"minutes\":{},\"count\":{kept},\"sessions\":[{body}]}}",
        id_field(id),
        req.decile,
        req.minute,
        req.minutes
    );
    Ok((frame, generated))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_op_and_echoes_ids() {
        assert_eq!(
            parse_request(r#"{"op":"ping"}"#).unwrap().request,
            Request::Ping
        );
        let f = parse_request(r#"{"id":7,"op":"stats"}"#).unwrap();
        assert_eq!(f.id.as_deref(), Some("7"));
        let f = parse_request(r#"{"id":"abc","op":"shutdown"}"#).unwrap();
        assert_eq!(f.id.as_deref(), Some("\"abc\""));
        let f = parse_request(
            r#"{"op":"sample","decile":3,"minute":600,"minutes":2,"seed":42,"service":"Web"}"#,
        )
        .unwrap();
        assert_eq!(
            f.request,
            Request::Sample(SampleRequest {
                decile: 3,
                minute: 600,
                minutes: 2,
                seed: Some(42),
                service: Some("Web".into()),
            })
        );
    }

    #[test]
    fn sample_defaults_and_bounds() {
        let f = parse_request(r#"{"op":"sample","decile":0}"#).unwrap();
        assert_eq!(
            f.request,
            Request::Sample(SampleRequest {
                decile: 0,
                minute: 0,
                minutes: 1,
                seed: None,
                service: None,
            })
        );
        for bad in [
            r#"{"op":"sample"}"#,
            r#"{"op":"sample","decile":10}"#,
            r#"{"op":"sample","decile":1,"minute":1440}"#,
            r#"{"op":"sample","decile":1,"minutes":0}"#,
            r#"{"op":"sample","decile":1,"minute":1439,"minutes":2}"#,
            r#"{"op":"sample","decile":1,"seed":-1}"#,
            r#"{"op":"sample","decile":1,"seed":1.5}"#,
            r#"{"op":"frobnicate"}"#,
            r#"[1,2]"#,
            r#"{"op":"ping","id":[1]}"#,
            "not json",
        ] {
            let err = parse_request(bad);
            assert!(
                matches!(err, Err((ErrorCode::BadRequest, _))),
                "{bad}: {err:?}"
            );
        }
    }

    #[test]
    fn error_frames_are_structured() {
        let frame = error_frame(Some("9"), ErrorCode::Overloaded, "queue full");
        assert_eq!(
            frame,
            r#"{"ok":false,"id":9,"error":{"code":"overloaded","message":"queue full"}}"#
        );
        // Frames are themselves valid JSON.
        assert!(crate::json::Json::parse(&frame).is_ok());
    }
}
