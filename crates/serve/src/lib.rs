//! # mtd-serve — a concurrent model-serving daemon
//!
//! The paper's fitted models are released to be *consumed*: the §6 use
//! cases (slicing SLAs, vRAN energy) all ingest sampled session
//! workloads. This crate turns a fitted [`mtd_core::ModelRegistry`] —
//! compiled once into an immutable [`mtd_core::ServingPlan`] — into a
//! request/response surface real network tooling can call: a std-only
//! TCP daemon answering line-delimited-JSON requests for sampled
//! session streams, model parameters, and registry statistics.
//!
//! ## Protocol (one JSON object per line; DESIGN.md §15)
//!
//! ```text
//! → {"op":"sample","decile":7,"minute":540,"minutes":5,"seed":42}
//! ← {"ok":true,"op":"sample","seed":42,...,"sessions":[...]}
//! → {"op":"params"}            → {"op":"stats"}        → {"op":"ping"}
//! → {"op":"shutdown"}          (graceful drain)
//! ```
//!
//! ## Determinism
//!
//! A request carrying a `seed` is answered byte-identically across
//! runs, platforms, and worker counts: the response is a pure function
//! of (plan, request), generated on a single worker with its own
//! seeded RNG and rendered with fixed field order and shortest
//! round-trip float formatting. Unseeded requests get a server-assigned
//! seed, echoed in the response so any reply can be replayed.
//!
//! ## Concurrency & backpressure
//!
//! The executor is the workspace's [`mtd_par::Pool`]: one long-lived
//! accept-loop job plus N connection-handler jobs share a scope for the
//! daemon's lifetime. Accepted connections wait in a bounded queue;
//! overflow is refused with a structured `overloaded` error frame —
//! never a silently dropped connection. Oversized requests and
//! oversized sample windows get `too_large` frames; I/O carries
//! per-connection timeouts.

pub mod json;
pub mod protocol;
pub mod server;

pub use protocol::{ErrorCode, Request, RequestFrame, SampleRequest};
pub use server::{start, ServeConfig, ServeStats, ServerHandle};

#[cfg(test)]
mod tests {
    use super::*;
    use mtd_core::arrival::PARETO_SHAPE;
    use mtd_core::{
        ArrivalModel, ArrivalModelSet, ModelQuality, ModelRegistry, PeakComponent, ServiceModel,
        ServingPlan,
    };
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    /// A small two-service, ten-decile registry (serde-free, mirrors
    /// the core generator fixture).
    fn registry() -> ModelRegistry {
        ModelRegistry {
            services: vec![
                ServiceModel {
                    name: "Messaging".into(),
                    mu: -0.2,
                    sigma: 0.6,
                    peaks: vec![],
                    alpha: 0.1,
                    beta: 0.6,
                    session_share: 0.8,
                    duration_sigma: 0.0,
                    support_log10: (-3.0, 4.0),
                    quality: ModelQuality::default(),
                },
                ServiceModel {
                    name: "Streaming".into(),
                    mu: 1.5,
                    sigma: 0.5,
                    peaks: vec![PeakComponent {
                        k: 0.15,
                        mu: 2.2,
                        sigma: 0.08,
                    }],
                    alpha: 0.003,
                    beta: 1.5,
                    session_share: 0.2,
                    duration_sigma: 0.0,
                    support_log10: (-3.0, 4.0),
                    quality: ModelQuality::default(),
                },
            ],
            arrivals: ArrivalModelSet {
                per_decile: (0..10)
                    .map(|d| {
                        let mu = 2.0 + f64::from(d) * 3.0;
                        ArrivalModel {
                            peak_mu: mu,
                            peak_sigma: mu / 10.0,
                            pareto_shape: PARETO_SHAPE,
                            pareto_scale: mu / 20.0,
                        }
                    })
                    .collect(),
            },
        }
    }

    fn start_daemon(workers: usize) -> ServerHandle {
        let plan = ServingPlan::compile(registry()).unwrap();
        start(
            plan,
            ServeConfig {
                workers,
                ..ServeConfig::default()
            },
        )
        .expect("bind 127.0.0.1:0")
    }

    /// One request → one response over a fresh connection.
    fn roundtrip(addr: std::net::SocketAddr, request: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(request.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        let mut line = String::new();
        BufReader::new(stream).read_line(&mut line).unwrap();
        line.trim_end().to_string()
    }

    #[test]
    fn daemon_answers_every_op_and_shuts_down_cleanly() {
        let daemon = start_daemon(2);
        let addr = daemon.addr();

        let pong = roundtrip(addr, r#"{"id":1,"op":"ping"}"#);
        assert_eq!(pong, r#"{"ok":true,"id":1,"op":"ping"}"#);

        let stats = roundtrip(addr, r#"{"op":"stats"}"#);
        assert!(stats.contains(r#""services":2"#), "{stats}");
        assert!(stats.contains(r#""deciles":10"#), "{stats}");
        assert!(stats.contains("Messaging") && stats.contains("Streaming"));

        let params = roundtrip(addr, r#"{"op":"params"}"#);
        assert!(params.contains(r#""alpha":0.003"#), "{params}");
        assert!(params.contains(r#""pareto_shape":"#), "{params}");
        let parsed = json::Json::parse(&params).expect("params frame is valid JSON");
        assert_eq!(parsed.get("ok"), Some(&json::Json::Bool(true)));

        let sample = roundtrip(addr, r#"{"op":"sample","decile":5,"minute":600,"seed":7}"#);
        let parsed = json::Json::parse(&sample).expect("sample frame is valid JSON");
        assert_eq!(
            parsed.get("seed").and_then(json::Json::as_u64),
            Some(7),
            "{sample}"
        );
        let count = parsed.get("count").and_then(json::Json::as_u64).unwrap();
        assert!(count > 0, "peak minute at decile 5 generates sessions");

        let bye = roundtrip(addr, r#"{"op":"shutdown"}"#);
        assert_eq!(bye, r#"{"ok":true,"op":"shutdown"}"#);
        let stats = daemon.join();
        assert!(stats.requests >= 5, "{stats:?}");
        assert_eq!(stats.errors, 0, "{stats:?}");
    }

    #[test]
    fn seeded_requests_replay_byte_identically_across_workers() {
        let request = r#"{"op":"sample","decile":8,"minute":1200,"minutes":3,"seed":123456}"#;
        let a = {
            let daemon = start_daemon(1);
            let r = roundtrip(daemon.addr(), request);
            daemon.join();
            r
        };
        let b = {
            let daemon = start_daemon(6);
            // Warm the daemon with unrelated traffic first: replay must
            // not depend on request order or concurrency.
            let _ = roundtrip(daemon.addr(), r#"{"op":"sample","decile":1,"seed":9}"#);
            let r = roundtrip(daemon.addr(), request);
            daemon.join();
            r
        };
        assert_eq!(a, b, "seeded replay must be byte-identical");
        assert!(a.contains(r#""seed":123456"#));
    }

    #[test]
    fn unseeded_requests_get_distinct_echoed_seeds() {
        let daemon = start_daemon(2);
        let a = roundtrip(daemon.addr(), r#"{"op":"sample","decile":3}"#);
        let b = roundtrip(daemon.addr(), r#"{"op":"sample","decile":3}"#);
        let seed = |frame: &str| {
            json::Json::parse(frame)
                .unwrap()
                .get("seed")
                .and_then(json::Json::as_u64)
        };
        // Note: assigned seeds can exceed 2^53 (as_u64 returns None);
        // only assert when both parse exactly.
        if let (Some(sa), Some(sb)) = (seed(&a), seed(&b)) {
            assert_ne!(sa, sb, "assigned seeds must differ");
        }
        daemon.join();
    }

    #[test]
    fn bad_requests_get_structured_error_frames() {
        let daemon = start_daemon(2);
        let addr = daemon.addr();
        for (request, code) in [
            ("not json", "bad_request"),
            (r#"{"op":"nope"}"#, "bad_request"),
            (r#"{"op":"sample","decile":11}"#, "bad_request"),
            (
                r#"{"op":"sample","decile":1,"service":"NoSuchService"}"#,
                "bad_request",
            ),
        ] {
            let frame = roundtrip(addr, request);
            assert!(
                frame.contains(&format!(r#""code":"{code}""#)),
                "{request} -> {frame}"
            );
            assert!(frame.starts_with(r#"{"ok":false"#), "{frame}");
        }
        let stats = daemon.join();
        assert_eq!(stats.errors, 4, "{stats:?}");
    }

    #[test]
    fn oversized_windows_and_lines_are_refused_not_truncated() {
        let plan = ServingPlan::compile(registry()).unwrap();
        let daemon = start(
            plan,
            ServeConfig {
                workers: 1,
                max_sessions: 10,
                max_line_bytes: 256,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let addr = daemon.addr();

        // A peak-hour day at the top decile far exceeds 10 sessions.
        let frame = roundtrip(
            addr,
            r#"{"op":"sample","decile":9,"minute":540,"minutes":60,"seed":1}"#,
        );
        assert!(frame.contains(r#""code":"too_large""#), "{frame}");

        // A request line beyond max_line_bytes is refused.
        let long = format!(r#"{{"op":"ping","id":"{}"}}"#, "x".repeat(512));
        let frame = roundtrip(addr, &long);
        assert!(frame.contains(r#""code":"too_large""#), "{frame}");
        daemon.join();
    }

    #[test]
    fn service_filter_keeps_draws_stable() {
        let daemon = start_daemon(2);
        let addr = daemon.addr();
        let all = roundtrip(addr, r#"{"op":"sample","decile":6,"minute":700,"seed":55}"#);
        let filtered = roundtrip(
            addr,
            r#"{"op":"sample","decile":6,"minute":700,"seed":55,"service":"Streaming"}"#,
        );
        let parse = |frame: &str| json::Json::parse(frame).unwrap();
        let (all, filtered) = (parse(&all), parse(&filtered));
        let sessions = |v: &json::Json| match v.get("sessions") {
            Some(json::Json::Arr(items)) => items.clone(),
            other => panic!("{other:?}"),
        };
        let streaming_in_all: Vec<_> = sessions(&all)
            .into_iter()
            .filter(|s| s.get("service").and_then(json::Json::as_u64) == Some(1))
            .collect();
        // The filter selects exactly the Streaming subsequence of the
        // unfiltered stream: generation order and draws are unchanged.
        assert_eq!(sessions(&filtered), streaming_in_all);
        daemon.join();
    }

    #[test]
    fn pipelined_requests_on_one_connection_are_answered_in_order() {
        let daemon = start_daemon(2);
        let mut stream = TcpStream::connect(daemon.addr()).unwrap();
        for i in 0..5 {
            let line = format!("{{\"id\":{i},\"op\":\"ping\"}}\n");
            stream.write_all(line.as_bytes()).unwrap();
        }
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let reader = BufReader::new(stream);
        let ids: Vec<String> = reader
            .lines()
            .map_while(Result::ok)
            .map(|l| l.trim_end().to_string())
            .collect();
        assert_eq!(ids.len(), 5);
        for (i, frame) in ids.iter().enumerate() {
            assert!(frame.contains(&format!("\"id\":{i}")), "{frame}");
        }
        daemon.join();
    }
}
