//! Minimal JSON codec for the serve wire protocol.
//!
//! Hand-rolled on purpose: the workspace's serde dependency is stubbed
//! in offline builds (see CONTRIBUTING.md), and the daemon must parse
//! requests and emit byte-stable responses everywhere. The parser
//! accepts standard JSON (objects, arrays, strings with escapes
//! including `\uXXXX` surrogate pairs, numbers, booleans, null) with a
//! recursion-depth cap; emission helpers produce the fixed-field-order
//! frames the determinism contract requires.

/// A parsed JSON value. Object fields keep their input order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON document; trailing non-whitespace is an error.
    pub fn parse(s: &str) -> Result<Json, String> {
        let mut p = Parser {
            b: s.as_bytes(),
            i: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.i != p.b.len() {
            return Err(format!("trailing bytes at offset {}", p.i));
        }
        Ok(v)
    }

    /// Object field lookup (first match).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an exact non-negative integer (rejects fractions,
    /// negatives, and magnitudes above 2^53 where f64 loses exactness).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9_007_199_254_740_992.0 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// Re-renders the value as compact JSON (used to echo request ids).
    #[must_use]
    pub fn render(&self) -> String {
        match self {
            Json::Null => "null".into(),
            Json::Bool(b) => b.to_string(),
            Json::Num(n) => num(*n),
            Json::Str(s) => quote(s),
            Json::Arr(items) => {
                let inner: Vec<String> = items.iter().map(Json::render).collect();
                format!("[{}]", inner.join(","))
            }
            Json::Obj(fields) => {
                let inner: Vec<String> = fields
                    .iter()
                    .map(|(k, v)| format!("{}:{}", quote(k), v.render()))
                    .collect();
                format!("{{{}}}", inner.join(","))
            }
        }
    }
}

/// Renders an f64 as a JSON number. Rust's shortest round-trip `{}`
/// formatting never emits an exponent, so the output is valid JSON;
/// non-finite values (which no model should produce) degrade to null.
#[must_use]
pub fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

/// Quotes and escapes a string for JSON output.
#[must_use]
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

const MAX_DEPTH: usize = 32;

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&c) = self.b.get(self.i) {
            if matches!(c, b' ' | b'\t' | b'\n' | b'\r') {
                self.i += 1;
            } else {
                break;
            }
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at offset {}", char::from(c), self.i))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".into());
        }
        self.skip_ws();
        match self.b.get(self.i) {
            None => Err("unexpected end of input".into()),
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at offset {}", self.i))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        while let Some(&c) = self.b.get(self.i) {
            if matches!(c, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.i += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.i])
            .map_err(|_| format!("invalid number at offset {start}"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number `{text}` at offset {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.b.get(self.i) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.b.get(self.i) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.i += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("invalid low surrogate".into());
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp).ok_or("invalid surrogate pair")?
                            } else {
                                char::from_u32(hi).ok_or("invalid \\u escape")?
                            };
                            out.push(c);
                            continue; // hex4 advanced past the digits
                        }
                        _ => return Err(format!("invalid escape at offset {}", self.i)),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // bytes are valid UTF-8 by construction).
                    let rest = std::str::from_utf8(&self.b[self.i..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    if (c as u32) < 0x20 {
                        return Err("unescaped control character in string".into());
                    }
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.i + 4;
        let digits = self
            .b
            .get(self.i..end)
            .and_then(|d| std::str::from_utf8(d).ok())
            .ok_or("truncated \\u escape")?;
        let v = u32::from_str_radix(digits, 16).map_err(|_| "invalid \\u escape".to_string())?;
        self.i = end;
        Ok(v)
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.b.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at offset {}", self.i)),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.b.get(self.i) == Some(&b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at offset {}", self.i)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_scalar_zoo() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(
            Json::parse(r#""a\"b\\c\nAé""#).unwrap(),
            Json::Str("a\"b\\c\nAé".into())
        );
        // Surrogate pair: U+1F600.
        assert_eq!(Json::parse(r#""😀""#).unwrap(), Json::Str("😀".into()));
    }

    #[test]
    fn parses_nested_structures_and_preserves_field_order() {
        let v = Json::parse(r#"{"b":[1,2,{"x":null}],"a":"y"}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_str), Some("y"));
        match v.get("b").unwrap() {
            Json::Arr(items) => assert_eq!(items.len(), 3),
            other => panic!("{other:?}"),
        }
        assert_eq!(v.render(), r#"{"b":[1,2,{"x":null}],"a":"y"}"#);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            r#"{"a"}"#,
            "tru",
            "01a",
            r#""unterminated"#,
            "{} extra",
            r#""\ud83d""#,
            "\u{1}",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
        // Depth bomb stops at the cap instead of overflowing the stack.
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn u64_extraction_is_exact() {
        assert_eq!(Json::parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(
            Json::parse("9007199254740992").unwrap().as_u64(),
            Some(9_007_199_254_740_992)
        );
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
        assert_eq!(Json::parse("1.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("1e300").unwrap().as_u64(), None);
    }

    #[test]
    fn quoting_round_trips() {
        let nasty = "a\"b\\c\nd\te\u{1}é😀";
        let quoted = quote(nasty);
        assert_eq!(Json::parse(&quoted).unwrap(), Json::Str(nasty.into()));
    }
}
