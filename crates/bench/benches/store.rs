//! Persistence benchmarks: the binary chunked format vs the JSON
//! compatibility fallback, plus the parallel encode/decode scaling.
//!
//! `cargo bench --bench store`. For the recorded numbers behind
//! BENCH_store.json (default scenario, file-backed load), run the
//! `store_bench` binary instead: `cargo run --release -p mtd-bench --bin
//! store_bench`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mtd_dataset::store::{decode_binary, encode_binary, load_json, save_json, verify_bytes};
use mtd_dataset::Dataset;
use mtd_netsim::geo::Topology;
use mtd_netsim::services::ServiceCatalog;
use mtd_netsim::ScenarioConfig;

fn dataset() -> Dataset {
    let config = ScenarioConfig::small_test();
    let topology = Topology::generate(config.n_bs, config.seed);
    Dataset::build(&config, &topology, &ServiceCatalog::paper())
}

fn bench_binary(c: &mut Criterion) {
    let ds = dataset();
    let bytes = encode_binary(&ds, 1);
    c.bench_function("store/encode_binary_1thread", |b| {
        b.iter(|| encode_binary(black_box(&ds), 1))
    });
    c.bench_function("store/encode_binary_4threads", |b| {
        b.iter(|| encode_binary(black_box(&ds), 4))
    });
    c.bench_function("store/decode_binary_1thread", |b| {
        b.iter(|| decode_binary(black_box(&bytes), 1).unwrap())
    });
    c.bench_function("store/decode_binary_4threads", |b| {
        b.iter(|| decode_binary(black_box(&bytes), 4).unwrap())
    });
    c.bench_function("store/verify_bytes", |b| {
        b.iter(|| verify_bytes(black_box(&bytes)))
    });
}

fn bench_json(c: &mut Criterion) {
    let ds = dataset();
    let dir = std::env::temp_dir().join("mtd_bench_store");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bench.json");
    save_json(&ds, &path).unwrap();
    c.bench_function("store/save_json", |b| {
        b.iter(|| save_json(black_box(&ds), &path).unwrap())
    });
    c.bench_function("store/load_json", |b| {
        b.iter(|| load_json(black_box(&path)).unwrap())
    });
    std::fs::remove_file(&path).ok();
}

criterion_group!(benches, bench_binary, bench_json);
criterion_main!(benches);
