//! Per-figure regeneration benchmarks: the cost of each analysis /
//! modeling step that backs a table or figure of the paper, measured on
//! a shared small dataset.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mtd_analysis::arrivals::decile_arrivals;
use mtd_analysis::clustering::cluster_services;
use mtd_analysis::dimensions::dimensions_analysis;
use mtd_analysis::ranking::rank_services;
use mtd_analysis::similarity::service_similarity;
use mtd_bench::fixture;
use mtd_core::duration::fit_duration_power_law;
use mtd_core::volume::{fit_volume_mixture, VolumeFitConfig};
use mtd_dataset::SliceFilter;

fn bench_fig3(c: &mut Criterion) {
    let f = fixture();
    c.bench_function("fig3/decile_arrival_fit", |b| {
        b.iter(|| decile_arrivals(black_box(&f.dataset), black_box(6)).unwrap())
    });
}

fn bench_fig4(c: &mut Criterion) {
    let f = fixture();
    c.bench_function("fig4/service_ranking", |b| {
        b.iter(|| rank_services(black_box(&f.dataset)).unwrap())
    });
}

fn bench_fig5(c: &mut Criterion) {
    let f = fixture();
    let netflix = f.dataset.service_by_name("Netflix").unwrap();
    c.bench_function("fig5/volume_pdf_aggregation", |b| {
        b.iter(|| {
            f.dataset
                .volume_pdf(black_box(netflix), &SliceFilter::all())
                .unwrap()
        })
    });
    c.bench_function("fig5/duration_pairs_aggregation", |b| {
        b.iter(|| {
            f.dataset
                .duration_pairs(black_box(netflix), &SliceFilter::all())
        })
    });
}

fn bench_fig6(c: &mut Criterion) {
    let f = fixture();
    let sim = service_similarity(&f.dataset).unwrap();
    c.bench_function("fig6/similarity_matrix_31x31", |b| {
        b.iter(|| service_similarity(black_box(&f.dataset)).unwrap())
    });
    c.bench_function("fig6/centroid_clustering", |b| {
        b.iter(|| cluster_services(black_box(&sim)).unwrap())
    });
}

fn bench_fig8(c: &mut Criterion) {
    let f = fixture();
    let services: Vec<u16> = (0..6).collect();
    c.bench_function("fig8/dimensions_6services", |b| {
        b.iter(|| dimensions_analysis(black_box(&f.dataset), black_box(&services)).unwrap())
    });
}

fn bench_fig9(c: &mut Criterion) {
    let f = fixture();
    let netflix = f.dataset.service_by_name("Netflix").unwrap();
    let pdf = f.dataset.volume_pdf(netflix, &SliceFilter::all()).unwrap();
    c.bench_function("fig9/lognormal_mixture_fit", |b| {
        b.iter(|| fit_volume_mixture(black_box(&pdf), &VolumeFitConfig::default()).unwrap())
    });
}

fn bench_fig10(c: &mut Criterion) {
    let f = fixture();
    let netflix = f.dataset.service_by_name("Netflix").unwrap();
    let pairs = f.dataset.duration_pairs(netflix, &SliceFilter::all());
    c.bench_function("fig10/power_law_fit", |b| {
        b.iter(|| fit_duration_power_law(black_box(&pairs)).unwrap())
    });
}

fn bench_fig11_table1(c: &mut Criterion) {
    let f = fixture();
    c.bench_function("fig11/full_registry_fit", |b| {
        b.iter(|| mtd_core::pipeline::fit_registry(black_box(&f.dataset)).unwrap())
    });
    c.bench_function("table1/shares_query", |b| {
        b.iter(|| black_box(&f.dataset).shares())
    });
}

criterion_group! {
    name = benches;
    // Each iteration of the heavy fits runs a full analysis pass; ten
    // samples keep the suite's wall time sane without losing signal.
    config = Criterion::default().sample_size(10);
    targets = bench_fig3,
        bench_fig4,
        bench_fig5,
        bench_fig6,
        bench_fig8,
        bench_fig9,
        bench_fig10,
        bench_fig11_table1
}
criterion_main!(benches);
