//! Simulation and use-case benchmarks: engine throughput, model-driven
//! generation, and the §6 machinery (Table 2 allocation, Fig 13
//! bin-packing orchestration).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mtd_bench::fixture;
use mtd_core::SessionGenerator;
use mtd_netsim::engine::{Engine, EngineSink};
use mtd_netsim::geo::Topology;
use mtd_netsim::session::SessionObservation;
use mtd_netsim::ScenarioConfig;
use mtd_usecases::slicing::{allocate_model, SlicingConfig};
use mtd_usecases::traffic::{throughput_series, ArrivalSkeleton, MeasurementSource, SessionSource};
use mtd_usecases::vran::first_fit_decreasing;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Counts observations without storing them (pure engine throughput).
#[derive(Default)]
struct CountSink {
    observations: u64,
}
impl EngineSink for CountSink {
    fn on_observation(&mut self, _obs: &SessionObservation) {
        self.observations += 1;
    }
}

fn bench_engine(c: &mut Criterion) {
    let config = ScenarioConfig {
        n_bs: 4,
        days: 1,
        arrival_scale: 0.1,
        ..ScenarioConfig::default()
    };
    let topology = Topology::generate(config.n_bs, config.seed);
    let catalog = mtd_netsim::services::ServiceCatalog::paper();
    c.bench_function("engine/4bs_1day_campaign", |b| {
        b.iter(|| {
            let engine = Engine::new(&config, &topology, &catalog);
            let mut sink = CountSink::default();
            let stats = engine.run(&mut sink);
            black_box(stats.sessions)
        })
    });
}

fn bench_generator(c: &mut Criterion) {
    let f = fixture();
    let generator = SessionGenerator::new(&f.registry).unwrap();
    let mut rng = SmallRng::seed_from_u64(5);
    c.bench_function("generator/model_day_decile9", |b| {
        b.iter(|| black_box(generator.generate_day(9, &mut rng).len()))
    });
}

fn bench_table2(c: &mut Criterion) {
    let f = fixture();
    let config = SlicingConfig {
        antenna_deciles: vec![5],
        days: 1,
        calibration_days: 1,
        arrival_scale: 0.1,
        ..SlicingConfig::default()
    };
    c.bench_function("table2/model_allocation_1antenna", |b| {
        b.iter(|| black_box(allocate_model(&config, &f.registry, &f.catalog)))
    });
}

fn bench_fig13(c: &mut Criterion) {
    let f = fixture();
    // Bin-packing across a realistic DU-load spectrum.
    let loads: Vec<f64> = (0..20).map(|i| 5.0 + f64::from(i) * 7.3).collect();
    c.bench_function("fig13/ffd_20dus", |b| {
        b.iter(|| black_box(first_fit_decreasing(black_box(&loads), 100.0).len()))
    });

    // Throughput-series accumulation for one ES-day.
    let skeleton = ArrivalSkeleton::generate(&[6], 1, 0.1, &f.catalog, 3);
    let source = MeasurementSource {
        catalog: &f.catalog,
    };
    let mut rng = SmallRng::seed_from_u64(7);
    let sessions: Vec<_> = skeleton.units[0]
        .arrivals
        .iter()
        .map(|a| source.draw(a, &mut rng))
        .collect();
    c.bench_function("fig13/throughput_series_1day", |b| {
        b.iter(|| black_box(throughput_series(black_box(&sessions), 86_400).len()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_engine, bench_generator, bench_table2, bench_fig13
}
criterion_main!(benches);
