//! Telemetry overhead benchmarks.
//!
//! The contract is that *disabled* telemetry is free enough to leave the
//! instrumentation compiled into the hot paths: compare
//! `sim/base_station_day` (telemetry off, the uninstrumented-equivalent
//! baseline) against `sim/base_station_day_enabled`, and the
//! microbenchmark pairs below. Disabled entry points cost one relaxed
//! atomic load, which should be <2% of any workload that does real work
//! per event.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mtd_netsim::engine::{CollectSink, Engine};
use mtd_netsim::geo::Topology;
use mtd_netsim::services::ServiceCatalog;
use mtd_netsim::ScenarioConfig;

fn small_scenario() -> ScenarioConfig {
    ScenarioConfig {
        n_bs: 2,
        days: 1,
        arrival_scale: 0.05,
        ..ScenarioConfig::small_test()
    }
}

/// The real pipeline workload, telemetry disabled (the shipped default).
fn bench_simulation_disabled(c: &mut Criterion) {
    mtd_telemetry::set_enabled(false);
    let config = small_scenario();
    let topology = Topology::generate(config.n_bs, config.seed);
    let catalog = ServiceCatalog::paper();
    c.bench_function("sim/base_station_day", |b| {
        b.iter(|| {
            let engine = Engine::new(&config, &topology, &catalog);
            let mut sink = CollectSink::default();
            black_box(engine.run(&mut sink))
        })
    });
}

/// The same workload with collection on: the upper bound a `--telemetry`
/// run pays.
fn bench_simulation_enabled(c: &mut Criterion) {
    mtd_telemetry::set_enabled(true);
    mtd_telemetry::reset();
    let config = small_scenario();
    let topology = Topology::generate(config.n_bs, config.seed);
    let catalog = ServiceCatalog::paper();
    c.bench_function("sim/base_station_day_enabled", |b| {
        b.iter(|| {
            let engine = Engine::new(&config, &topology, &catalog);
            let mut sink = CollectSink::default();
            black_box(engine.run(&mut sink))
        })
    });
    mtd_telemetry::set_enabled(false);
    mtd_telemetry::reset();
}

/// Isolated entry-point cost: counter increments and span guards, both
/// with collection off (the fast path) and on.
fn bench_entry_points(c: &mut Criterion) {
    mtd_telemetry::set_enabled(false);
    c.bench_function("telemetry/count_disabled_x1000", |b| {
        b.iter(|| {
            for i in 0..1000u64 {
                mtd_telemetry::count(black_box("bench.counter"), black_box(i & 1));
            }
        })
    });
    c.bench_function("telemetry/span_disabled_x1000", |b| {
        b.iter(|| {
            for _ in 0..1000 {
                let _g = mtd_telemetry::span!("bench.span");
                black_box(&_g);
            }
        })
    });

    mtd_telemetry::set_enabled(true);
    mtd_telemetry::reset();
    c.bench_function("telemetry/count_enabled_x1000", |b| {
        b.iter(|| {
            for i in 0..1000u64 {
                mtd_telemetry::count(black_box("bench.counter"), black_box(i & 1));
            }
        })
    });
    c.bench_function("telemetry/observe_enabled_x1000", |b| {
        b.iter(|| {
            for i in 0..1000 {
                mtd_telemetry::observe(black_box("bench.hist"), f64::from(i) * 0.37);
            }
        })
    });
    c.bench_function("telemetry/span_enabled_x1000", |b| {
        b.iter(|| {
            for _ in 0..1000 {
                let _g = mtd_telemetry::span!("bench.span");
                black_box(&_g);
            }
        })
    });
    mtd_telemetry::set_enabled(false);
    mtd_telemetry::reset();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_simulation_disabled, bench_simulation_enabled, bench_entry_points
);
criterion_main!(benches);
