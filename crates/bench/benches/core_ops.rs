//! Microbenchmarks of the numerical core: the operations every figure
//! regeneration is built from.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mtd_math::distributions::{Distribution1D, LogNormal10};
use mtd_math::emd::{emd_centered, emd_same_grid};
use mtd_math::fit::{fit_lognormal10_from_pdf, fit_power_law};
use mtd_math::histogram::{BinnedPdf, LogGrid, LogHistogram};
use mtd_math::savgol::SavitzkyGolay;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn pdf(mu: f64, sigma: f64) -> BinnedPdf {
    let grid = LogGrid::new(-3.0, 4.0, 210).unwrap();
    let ln = LogNormal10::new(mu, sigma).unwrap();
    BinnedPdf::from_fn(grid, |u| ln.pdf_log10(u)).unwrap()
}

fn bench_emd(c: &mut Criterion) {
    let a = pdf(0.5, 0.6);
    let b = pdf(1.2, 0.9);
    c.bench_function("emd/same_grid_210bins", |bencher| {
        bencher.iter(|| emd_same_grid(black_box(&a), black_box(&b)).unwrap())
    });
    c.bench_function("emd/centered_210bins", |bencher| {
        bencher.iter(|| emd_centered(black_box(&a), black_box(&b)).unwrap())
    });
}

fn bench_histogram(c: &mut Criterion) {
    let grid = LogGrid::new(-3.0, 4.0, 210).unwrap();
    let ln = LogNormal10::new(0.8, 0.7).unwrap();
    let mut rng = SmallRng::seed_from_u64(1);
    let samples: Vec<f64> = (0..100_000).map(|_| ln.sample(&mut rng)).collect();
    c.bench_function("histogram/add_100k", |bencher| {
        bencher.iter(|| {
            let mut h = LogHistogram::new(grid);
            for x in &samples {
                h.add(*x);
            }
            black_box(h.total())
        })
    });
    let mut h = LogHistogram::new(grid);
    for x in &samples {
        h.add(*x);
    }
    let p = h.to_pdf().unwrap();
    c.bench_function("histogram/quantile", |bencher| {
        bencher.iter(|| black_box(p.quantile_log10(black_box(0.95))))
    });
    c.bench_function("histogram/sample", |bencher| {
        let mut rng = SmallRng::seed_from_u64(2);
        bencher.iter(|| black_box(p.sample(&mut rng)))
    });
}

fn bench_fits(c: &mut Criterion) {
    let p = pdf(0.8, 0.7);
    c.bench_function("fit/lognormal_from_pdf", |bencher| {
        bencher.iter(|| fit_lognormal10_from_pdf(black_box(&p)).unwrap())
    });

    let ds: Vec<f64> = (1..60).map(f64::from).collect();
    let vs: Vec<f64> = ds.iter().map(|d| 0.1 * d.powf(1.3) * 1.01).collect();
    c.bench_function("fit/power_law_lm_59pts", |bencher| {
        bencher.iter(|| fit_power_law(black_box(&ds), black_box(&vs), None).unwrap())
    });
}

fn bench_savgol(c: &mut Criterion) {
    let sg = SavitzkyGolay::new(3, 1).unwrap();
    let signal: Vec<f64> = (0..210).map(|i| (f64::from(i) * 0.1).sin().abs()).collect();
    c.bench_function("savgol/derivative_210", |bencher| {
        bencher.iter(|| sg.first_derivative(black_box(&signal), 0.0333).unwrap())
    });
}

fn bench_sampling(c: &mut Criterion) {
    let ln = LogNormal10::new(1.0, 0.5).unwrap();
    let mut rng = SmallRng::seed_from_u64(3);
    c.bench_function("distributions/lognormal_sample", |bencher| {
        bencher.iter(|| black_box(ln.sample(&mut rng)))
    });
}

criterion_group!(
    benches,
    bench_emd,
    bench_histogram,
    bench_fits,
    bench_savgol,
    bench_sampling
);
criterion_main!(benches);
