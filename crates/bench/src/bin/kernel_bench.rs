//! Records the batch-kernel throughput numbers behind
//! `BENCH_kernels.json`: every `mtd_math::simd` kernel timed on the
//! scalar fallback tier and on the dispatched tier of this CPU, as
//! median-of-N elements/second, plus a plain libm loop for the
//! transcendentals as an external reference point.
//!
//! Usage:
//!   cargo run --release -p mtd-bench --bin kernel_bench [out.json]
//!   cargo run --release -p mtd-bench --bin kernel_bench -- --guard
//!
//! `--guard` is the CI perf-regression gate: it re-measures the
//! SIMD-over-scalar speedup ratio per kernel — a same-machine,
//! same-moment quantity, so it holds on any runner — and fails when a
//! kernel falls below the pinned floor (half the baseline recorded in
//! the repo's BENCH_kernels.json, rounded down; noise-tolerant via the
//! shared median-of-N timer). On CPUs that dispatch to the scalar tier
//! there is no vector path to guard, so the gate passes with a note.
//!
//! `MTD_FAST=1` shrinks the buffers for CI smoke runs; the speedup
//! *ratio* the guard checks is size-independent for these
//! cache-resident kernels.

use mtd_bench::{time_median, BenchReport};
use mtd_math::simd::{self, Tier};
use std::fmt::Write as _;

/// Guarded floors: SIMD-over-scalar speedup per kernel, pinned well
/// below the ratios recorded in BENCH_kernels.json on the baseline
/// machine (AVX2: 1.5–5.5x) but far above the signature of a real break
/// (losing cross-feature inlining measured 0.2–0.4x on the heavy
/// kernels). A lane dropped to scalar, a dispatch bug, or an accidental
/// bounds check in the inner loop trips the gate; run-to-run noise —
/// savgol's scalar loop auto-vectorizes and swings the ratio hardest —
/// does not.
const GUARD_MIN_SPEEDUP: &[(&str, f64)] = &[
    ("exp", 1.1),
    ("ln", 0.7),
    ("erf", 0.9),
    ("gaussian_pdf", 0.9),
    ("gaussian_cdf", 1.0),
    ("savgol_convolve", 1.5),
];

/// One measured kernel: million elements per second per tier.
struct KernelResult {
    name: &'static str,
    scalar_melems: f64,
    simd_melems: f64,
    /// Plain libm loop, where one exists (`None` for the compat-only
    /// kernels).
    libm_melems: Option<f64>,
}

impl KernelResult {
    fn speedup(&self) -> f64 {
        self.simd_melems / self.scalar_melems
    }
}

/// Times `f` (which processes `n * reps` elements) and converts to
/// million elements/second.
fn melems(n: usize, reps: usize, mut f: impl FnMut()) -> f64 {
    let seconds = time_median(|| {
        for _ in 0..reps {
            f();
        }
    });
    (n * reps) as f64 / seconds / 1e6
}

fn main() {
    let arg = std::env::args().nth(1);
    let guard = arg.as_deref() == Some("--guard");
    let out_path = if guard {
        None
    } else {
        Some(arg.unwrap_or_else(|| "BENCH_kernels.json".to_string()))
    };
    let fast = std::env::var("MTD_FAST").is_ok();
    let n: usize = if fast { 1 << 13 } else { 1 << 16 };
    let reps: usize = if fast { 8 } else { 16 };

    let active = simd::active_tier();
    eprintln!(
        "dispatched tier: {} (available: {}), {n} elements x {reps} reps per sample",
        active.name(),
        simd::available_tiers()
            .iter()
            .map(|t| t.name())
            .collect::<Vec<_>>()
            .join(", ")
    );

    // Inputs spanning each kernel's hot domain (log10-volume grids run
    // roughly -2..5; erf arguments a few sigma around 0).
    let xs: Vec<f64> = (0..n).map(|i| -6.0 + 12.0 * i as f64 / n as f64).collect();
    let pos: Vec<f64> = (0..n).map(|i| 1e-4 + i as f64 * 0.01).collect();
    let coeffs: Vec<f64> = (0..9).map(|i| (i as f64 - 4.0) / 60.0).collect();
    let mut out = vec![0.0; n];
    let mut conv_out = vec![0.0; n + 1 - coeffs.len()];

    let mut results: Vec<KernelResult> = Vec::new();
    macro_rules! bench_unary {
        ($name:literal, $f:path, $input:expr, $libm:expr) => {{
            let scalar = melems(n, reps, || $f(Tier::Scalar, $input, &mut out));
            let simd = melems(n, reps, || $f(active, $input, &mut out));
            results.push(KernelResult {
                name: $name,
                scalar_melems: scalar,
                simd_melems: simd,
                libm_melems: $libm,
            });
        }};
    }

    let libm_exp = melems(n, reps, || {
        for (o, &x) in out.iter_mut().zip(&xs) {
            *o = x.exp();
        }
    });
    let libm_ln = melems(n, reps, || {
        for (o, &x) in out.iter_mut().zip(&pos) {
            *o = x.ln();
        }
    });
    bench_unary!("exp", simd::exp_into_with, &xs, Some(libm_exp));
    bench_unary!("ln", simd::ln_into_with, &pos, Some(libm_ln));
    bench_unary!("log10", simd::log10_into_with, &pos, None);
    bench_unary!("erf", simd::erf_into_with, &xs, None);

    for (name, mean, std) in [("gaussian_pdf", 0.8, 0.6), ("gaussian_cdf", 0.8, 0.6)] {
        let f: fn(Tier, &[f64], f64, f64, &mut [f64]) = if name == "gaussian_pdf" {
            simd::gaussian_pdf_into_with
        } else {
            simd::gaussian_cdf_into_with
        };
        let scalar = melems(n, reps, || f(Tier::Scalar, &xs, mean, std, &mut out));
        let simd_r = melems(n, reps, || f(active, &xs, mean, std, &mut out));
        results.push(KernelResult {
            name,
            scalar_melems: scalar,
            simd_melems: simd_r,
            libm_melems: None,
        });
    }

    let scalar = melems(n, reps, || {
        simd::convolve_scaled_into_with(Tier::Scalar, &xs, &coeffs, 1.0, 2.5, &mut conv_out);
    });
    let simd_r = melems(n, reps, || {
        simd::convolve_scaled_into_with(active, &xs, &coeffs, 1.0, 2.5, &mut conv_out);
    });
    results.push(KernelResult {
        name: "savgol_convolve",
        scalar_melems: scalar,
        simd_melems: simd_r,
        libm_melems: None,
    });

    let half = n / 2;
    let (a, b) = xs.split_at(half);
    let mut sub_out = vec![0.0; half];
    let scalar = melems(half, reps, || {
        simd::sub_div_into_with(Tier::Scalar, a, &b[..half], 0.05, &mut sub_out);
    });
    let simd_r = melems(half, reps, || {
        simd::sub_div_into_with(active, a, &b[..half], 0.05, &mut sub_out);
    });
    results.push(KernelResult {
        name: "sub_div",
        scalar_melems: scalar,
        simd_melems: simd_r,
        libm_melems: None,
    });

    for r in &results {
        eprintln!(
            "{:16} scalar {:8.1} Melem/s  {} {:8.1} Melem/s  ({:.2}x{})",
            r.name,
            r.scalar_melems,
            active.name(),
            r.simd_melems,
            r.speedup(),
            r.libm_melems
                .map(|l| format!(", libm {l:.1}"))
                .unwrap_or_default()
        );
    }

    if guard {
        run_guard(active, &results);
        return;
    }

    let mut report = BenchReport::new("kernels: simd batch throughput vs scalar fallback");
    report.field_str("active_tier", active.name());
    report.field_raw(
        "available_tiers",
        &format!(
            "[{}]",
            simd::available_tiers()
                .iter()
                .map(|t| format!("\"{}\"", t.name()))
                .collect::<Vec<_>>()
                .join(", ")
        ),
    );
    report.field_raw("elements", &n.to_string());
    report.field_raw("inner_reps", &reps.to_string());
    report.field_str("unit", "million elements per second");
    let mut kernels = String::from("{");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { ", " } else { "" };
        let libm = r
            .libm_melems
            .map(|l| format!(", \"libm_melems_per_s\": {l:.1}"))
            .unwrap_or_default();
        let _ = write!(
            kernels,
            "\"{}\": {{\"scalar_melems_per_s\": {:.1}, \"simd_melems_per_s\": {:.1}, \
             \"speedup_simd_over_scalar\": {:.2}{libm}}}{comma}",
            r.name,
            r.scalar_melems,
            r.simd_melems,
            r.speedup()
        );
    }
    kernels.push('}');
    report.field_raw("kernels", &kernels);
    report.write(out_path.as_deref().expect("record mode has a path"));
}

/// The CI gate: every guarded kernel's measured speedup must clear its
/// pinned floor. Scalar-only CPUs have nothing to guard.
fn run_guard(active: Tier, results: &[KernelResult]) {
    if active == Tier::Scalar {
        println!("kernel guard: dispatched tier is scalar on this CPU; nothing to guard");
        return;
    }
    let mut failures = Vec::new();
    for (name, floor) in GUARD_MIN_SPEEDUP {
        let r = results
            .iter()
            .find(|r| r.name == *name)
            .expect("guarded kernel is measured");
        let speedup = r.speedup();
        let verdict = if speedup >= *floor { "ok" } else { "REGRESSED" };
        println!("kernel guard: {name:16} {speedup:5.2}x (floor {floor:.2}x) {verdict}");
        if speedup < *floor {
            failures.push(format!("{name}: {speedup:.2}x < {floor:.2}x"));
        }
    }
    if failures.is_empty() {
        println!(
            "kernel guard PASS: {} kernel(s) at or above their pinned speedup floors",
            GUARD_MIN_SPEEDUP.len()
        );
    } else {
        eprintln!(
            "kernel guard FAIL: simd throughput regressed below the pinned \
             fraction of the recorded baseline:\n  {}",
            failures.join("\n  ")
        );
        std::process::exit(1);
    }
}
