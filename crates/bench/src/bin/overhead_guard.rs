//! Fault-hook overhead guard (DESIGN.md §11): times the BENCH_fit and
//! BENCH_store hot paths and records whether the fault-injection hooks
//! are compiled in. CI builds this binary twice — default (hooks
//! compiled out) and `--features fault-inject` (hooks compiled in but
//! idle, no plan installed) — and asserts the idle-hook medians stay
//! within 1% of the hook-free ones.
//!
//! Usage: `cargo run --release -p mtd-bench --bin overhead_guard [out.json]`

use mtd_bench::{fixture, time_median, DEFAULT_RUNS};
use mtd_core::pipeline::fit_registry_pooled;
use mtd_core::volume::VolumeFitConfig;
use mtd_dataset::store::{decode_binary, encode_binary};
use std::fmt::Write as _;

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "overhead-guard.json".to_string());
    let compiled_in = mtd_fault::compiled_in();
    eprintln!("fault hooks compiled in: {compiled_in} (idle either way — no plan installed)");

    let fx = fixture();
    let pool = mtd_par::Pool::new(2);
    let volume_config = VolumeFitConfig::default();

    let fit_s =
        time_median(|| fit_registry_pooled(&fx.dataset, &volume_config, &pool).expect("fit"));
    eprintln!("fit median: {fit_s:.6}s");

    let bytes = encode_binary(&fx.dataset, 1);
    let encode_s = time_median(|| encode_binary(&fx.dataset, 1));
    let decode_s = time_median(|| decode_binary(&bytes, 1).expect("decode"));
    eprintln!("store encode median: {encode_s:.6}s, decode median: {decode_s:.6}s");

    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(
        out,
        "  \"bench\": \"overhead_guard: BENCH_fit/BENCH_store hot paths vs fault hooks\","
    );
    let _ = writeln!(out, "  \"fault_hooks_compiled_in\": {compiled_in},");
    let _ = writeln!(out, "  \"runs_per_timing\": {DEFAULT_RUNS},");
    let _ = writeln!(out, "  \"statistic\": \"median wall-clock seconds\",");
    let _ = writeln!(out, "  \"fit_seconds\": {fit_s:.6},");
    let _ = writeln!(out, "  \"store_encode_seconds\": {encode_s:.6},");
    let _ = writeln!(out, "  \"store_decode_seconds\": {decode_s:.6}");
    let _ = writeln!(out, "}}");

    std::fs::write(&out_path, &out).unwrap();
    eprintln!("wrote {out_path}");
    print!("{out}");
}
