//! Hook overhead guard (DESIGN.md §11 and §12): times the BENCH_fit and
//! BENCH_store hot paths and records which instrumentation hooks are
//! compiled in. CI builds this binary three ways — default (all hooks
//! compiled out), `--features fault-inject` (fault hooks compiled in but
//! idle, no plan installed) and `--features prof` (profiler scope hooks
//! compiled in but idle, no sampler running) — and asserts each idle-hook
//! median stays within 1% of the hook-free one.
//!
//! Usage: `cargo run --release -p mtd-bench --bin overhead_guard [out.json]`

use mtd_bench::{fixture, time_median, BenchReport};
use mtd_core::pipeline::fit_registry_pooled;
use mtd_core::volume::VolumeFitConfig;
use mtd_dataset::store::{decode_binary, encode_binary};

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "overhead-guard.json".to_string());
    let fault_in = mtd_fault::compiled_in();
    let prof_in = cfg!(feature = "prof");
    eprintln!(
        "fault hooks compiled in: {fault_in}, prof hooks compiled in: {prof_in} \
         (idle either way — no plan installed, no sampler running)"
    );

    let fx = fixture();
    let pool = mtd_par::Pool::new(2);
    let volume_config = VolumeFitConfig::default();

    let fit_s =
        time_median(|| fit_registry_pooled(&fx.dataset, &volume_config, &pool).expect("fit"));
    eprintln!("fit median: {fit_s:.6}s");

    let bytes = encode_binary(&fx.dataset, 1);
    let encode_s = time_median(|| encode_binary(&fx.dataset, 1));
    let decode_s = time_median(|| decode_binary(&bytes, 1).expect("decode"));
    eprintln!("store encode median: {encode_s:.6}s, decode median: {decode_s:.6}s");

    let mut report =
        BenchReport::new("overhead_guard: BENCH_fit/BENCH_store hot paths vs idle hooks");
    report.field_raw("fault_hooks_compiled_in", &fault_in.to_string());
    report.field_raw("prof_hooks_compiled_in", &prof_in.to_string());
    report.field_seconds("fit_seconds", fit_s);
    report.field_seconds("store_encode_seconds", encode_s);
    report.field_seconds("store_decode_seconds", decode_s);
    report.write(&out_path);
}
