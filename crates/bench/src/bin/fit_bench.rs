//! Records the fitting-pipeline numbers behind `BENCH_fit.json`: builds a
//! measurement dataset once, then times `fit_registry_pooled` at 1, 2, 4
//! and 8 workers. Every parallel run is checked for bit-identity against
//! the sequential registry before its timing is trusted.
//!
//! Usage: `cargo run --release -p mtd-bench --bin fit_bench [out.json]`
//! (`MTD_FAST=1` switches to the small bench scenario for CI smoke runs.)

use mtd_bench::{bench_config, time_median, DEFAULT_RUNS};
use mtd_core::pipeline::fit_registry_pooled;
use mtd_core::volume::VolumeFitConfig;
use mtd_dataset::Dataset;
use mtd_netsim::geo::Topology;
use mtd_netsim::services::ServiceCatalog;
use mtd_netsim::ScenarioConfig;
use std::fmt::Write as _;
use std::path::Path;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_fit.json".to_string());
    let fast = std::env::var("MTD_FAST").is_ok();
    let (config, preset) = if fast {
        (bench_config(), "bench")
    } else {
        (ScenarioConfig::default(), "default")
    };

    eprintln!(
        "building {preset} scenario dataset ({} BS x {} days)...",
        config.n_bs, config.days
    );
    let topology = Topology::generate(config.n_bs, config.seed);
    let dataset = Dataset::build(&config, &topology, &ServiceCatalog::paper());
    let volume_config = VolumeFitConfig::default();

    let baseline = fit_registry_pooled(&dataset, &volume_config, &mtd_par::Pool::new(1))
        .expect("bench dataset fits");

    let mut timings = Vec::new();
    for threads in THREAD_COUNTS {
        let pool = mtd_par::Pool::new(threads);
        let seconds = time_median(|| {
            let registry = fit_registry_pooled(&dataset, &volume_config, &pool).unwrap();
            // The timing of a wrong result is worthless: every run must
            // reproduce the sequential registry bit for bit.
            assert!(
                registry == baseline,
                "{threads}-thread registry differs from sequential"
            );
            registry
        });
        eprintln!("fit_registry with {threads} thread(s): {seconds:.6}s");
        timings.push((threads, seconds));
    }

    let detected = std::thread::available_parallelism().map_or(1, |n| n.get());
    let sequential_s = timings[0].1;
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(
        out,
        "  \"bench\": \"fit: parallel model fitting vs sequential\","
    );
    let _ = writeln!(
        out,
        "  \"scenario\": {{\"preset\": \"{preset}\", \"n_bs\": {}, \"days\": {}}},",
        config.n_bs, config.days
    );
    let _ = writeln!(out, "  \"runs_per_timing\": {DEFAULT_RUNS},");
    let _ = writeln!(out, "  \"statistic\": \"median wall-clock seconds\",");
    let _ = writeln!(out, "  \"detected_cores\": {detected},");
    let _ = writeln!(out, "  \"bit_identical_to_sequential\": true,");
    let _ = writeln!(out, "  \"fit_seconds\": {{");
    for (i, (threads, seconds)) in timings.iter().enumerate() {
        let comma = if i + 1 < timings.len() { "," } else { "" };
        let _ = writeln!(out, "    \"threads_{threads}\": {seconds:.6}{comma}");
    }
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"speedup_over_sequential\": {{");
    for (i, (threads, seconds)) in timings.iter().enumerate() {
        let comma = if i + 1 < timings.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    \"threads_{threads}\": {:.2}{comma}",
            sequential_s / seconds
        );
    }
    let _ = writeln!(out, "  }}");
    let _ = writeln!(out, "}}");

    std::fs::write(Path::new(&out_path), &out).unwrap();
    eprintln!("wrote {out_path}");
    print!("{out}");
}
