//! Records the fitting-pipeline numbers behind `BENCH_fit.json`: builds a
//! measurement dataset once, then times `fit_registry_pooled` at 1, 2, 4
//! and 8 workers. Every parallel run is checked for bit-identity against
//! the sequential registry before its timing is trusted.
//!
//! Usage: `cargo run --release -p mtd-bench --bin fit_bench [out.json]`
//! (`MTD_FAST=1` switches to the small bench scenario for CI smoke runs.)

use mtd_bench::{bench_config, machine_info, time_median, BenchReport};
use mtd_core::pipeline::fit_registry_pooled;
use mtd_core::volume::VolumeFitConfig;
use mtd_dataset::Dataset;
use mtd_netsim::geo::Topology;
use mtd_netsim::services::ServiceCatalog;
use mtd_netsim::ScenarioConfig;
use std::fmt::Write as _;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_fit.json".to_string());
    let fast = std::env::var("MTD_FAST").is_ok();
    let (config, preset) = if fast {
        (bench_config(), "bench")
    } else {
        (ScenarioConfig::default(), "default")
    };

    eprintln!(
        "building {preset} scenario dataset ({} BS x {} days)...",
        config.n_bs, config.days
    );
    let topology = Topology::generate(config.n_bs, config.seed);
    let dataset = Dataset::build(&config, &topology, &ServiceCatalog::paper());
    let volume_config = VolumeFitConfig::default();

    let baseline = fit_registry_pooled(&dataset, &volume_config, &mtd_par::Pool::new(1))
        .expect("bench dataset fits");

    let mut timings = Vec::new();
    for threads in THREAD_COUNTS {
        let pool = mtd_par::Pool::new(threads);
        let seconds = time_median(|| {
            let registry = fit_registry_pooled(&dataset, &volume_config, &pool).unwrap();
            // The timing of a wrong result is worthless: every run must
            // reproduce the sequential registry bit for bit.
            assert!(
                registry == baseline,
                "{threads}-thread registry differs from sequential"
            );
            registry
        });
        eprintln!("fit_registry with {threads} thread(s): {seconds:.6}s");
        timings.push((threads, seconds));
    }

    let machine = machine_info();
    let sequential_s = timings[0].1;
    let mut report = BenchReport::new("fit: parallel model fitting vs sequential");
    report.field_raw(
        "scenario",
        &format!(
            "{{\"preset\": \"{preset}\", \"n_bs\": {}, \"days\": {}}}",
            config.n_bs, config.days
        ),
    );
    report.field_raw("bit_identical_to_sequential", "true");
    report.field_raw(
        "cores_limited",
        if machine.detected_cores == 1 {
            "true"
        } else {
            "false"
        },
    );
    report.field_raw(
        "fit_seconds",
        &timing_object(&timings, |s| format!("{s:.6}")),
    );
    // On a 1-core machine every speedup is pinned near 1.0x by the
    // hardware, not the runtime, so a headline speedup claim would be
    // meaningless at best and misleading at worst. Record the raw thread
    // timings above either way, but only publish the speedup table when
    // the machine can actually express one.
    if machine.detected_cores == 1 {
        report.field_raw("speedup_over_sequential", "null");
        report.field_str(
            "speedup_suppressed_reason",
            "1 detected core: parallel timings measure scheduling overhead, \
             not speedup; see fit_seconds for the raw numbers",
        );
    } else {
        report.field_raw(
            "speedup_over_sequential",
            &timing_object(&timings, |s| format!("{:.2}", sequential_s / s)),
        );
    }
    report.write(&out_path);
}

/// `{"threads_1": ..., "threads_2": ...}` with per-entry formatting.
fn timing_object(timings: &[(usize, f64)], fmt: impl Fn(f64) -> String) -> String {
    let mut out = String::from("{");
    for (i, (threads, seconds)) in timings.iter().enumerate() {
        let comma = if i + 1 < timings.len() { ", " } else { "" };
        let _ = write!(out, "\"threads_{threads}\": {}{comma}", fmt(*seconds));
    }
    out.push('}');
    out
}
