//! Records the paper-scale campaign numbers behind `BENCH_scale.json`:
//! runs the sharded out-of-core campaign runner (DESIGN.md §13) at two
//! sizes a decade apart and pins that peak memory grows sublinearly in
//! campaign size — the whole point of the shard/spill/assemble design.
//!
//! The small campaign runs FIRST: the counting allocator's peak is a
//! process-global monotonic high-water mark, so only the
//! small-before-big order yields a valid per-size reading.
//!
//! Usage: `cargo run --release -p mtd-bench --bin scale_bench [out.json]`
//! `MTD_FAST=1` shrinks both campaigns for CI smoke runs (same decade
//! ratio, seconds instead of minutes).

use mtd_bench::BenchReport;
use mtd_campaign::{run, CampaignConfig};
use mtd_netsim::ScenarioConfig;
use std::time::Instant;

#[global_allocator]
static ALLOC: mtd_telemetry::alloc::CountingAlloc = mtd_telemetry::alloc::CountingAlloc::new();

/// Peak live heap gate for the BIG campaign, full mode. The dominant
/// term is the (service, group, day) ExactCell map — group-bounded, not
/// station-bounded — at ~4.6 KB per cell; the O(n_bs × days) minute
/// data streams through spills and never materializes (dense rows alone
/// would be ~780 MB here, the assembled store is ~260 MB). Measured
/// ≈ 0.9 GB at 1000 BS × 45 days; 1.5 GiB leaves headroom while a
/// regression to monolithic materialization (~2.5 GB+) still trips.
const ALLOC_GATE_FULL: i64 = 1536 * 1024 * 1024;
/// Fast-mode twin (240 BS × 3 days): measured ≈ 47 MB.
const ALLOC_GATE_FAST: i64 = 96 * 1024 * 1024;

/// The invariance battery's pinned gate (crates/campaign/tests/memory.rs),
/// echoed here so the bench artifact documents both bounds.
const TEST_BATTERY_GATE: i64 = 96 * 1024 * 1024;

struct CampaignRun {
    label: &'static str,
    seconds: f64,
    bs_minutes: u64,
    store_bytes: u64,
    peak_live_bytes: i64,
}

fn run_campaign(label: &'static str, n_bs: usize, days: u32, shards: u32) -> CampaignRun {
    let dir = std::env::temp_dir().join("mtd_scale_bench").join(label);
    std::fs::remove_dir_all(&dir).ok();
    let config = CampaignConfig {
        scenario: ScenarioConfig {
            n_bs,
            days,
            seed: 0x5CA1E,
            // Light per-BS load: the bench measures the out-of-core
            // machinery's scaling, not raw session throughput.
            arrival_scale: 0.01,
            ..ScenarioConfig::default()
        },
        shards,
        threads: 1,
        out: dir.join("store.mtdstore"),
        dir,
        kill_after: None,
        refit_window: None,
    };
    eprintln!("campaign {label}: {n_bs} BS x {days} days in {shards} shards ...");
    let start = Instant::now();
    let report = run(&config).unwrap_or_else(|e| panic!("{label}: {e}"));
    let seconds = start.elapsed().as_secs_f64();
    std::fs::remove_dir_all(&config.dir).ok();
    let peak = mtd_telemetry::alloc::stats().peak_live_bytes;
    eprintln!(
        "campaign {label}: {seconds:.1}s, {} bytes, peak live heap {peak} bytes",
        report.store_bytes
    );
    CampaignRun {
        label,
        seconds,
        bs_minutes: report.bs_minutes(),
        store_bytes: report.store_bytes,
        peak_live_bytes: peak,
    }
}

fn json_for(r: &CampaignRun) -> String {
    format!(
        "{{\"label\": \"{}\", \"bs_minutes\": {}, \"store_bytes\": {}, \
         \"seconds\": {:.3}, \"bs_minutes_per_second\": {:.0}, \
         \"peak_live_heap_bytes\": {}}}",
        r.label,
        r.bs_minutes,
        r.store_bytes,
        r.seconds,
        r.bs_minutes as f64 / r.seconds,
        r.peak_live_bytes
    )
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_scale.json".to_string());
    let fast = std::env::var_os("MTD_FAST").is_some();

    // One decade apart in base stations at identical days, so the size
    // ratio is exactly 10x and the peak-memory ratio is interpretable.
    let (small, big, shards, gate) = if fast {
        ((24usize, 3u32), (240usize, 3u32), 8u32, ALLOC_GATE_FAST)
    } else {
        ((100, 45), (1000, 45), 16, ALLOC_GATE_FULL)
    };

    // Small FIRST: the allocator peak is monotonic (see module docs).
    let small_run = run_campaign("small", small.0, small.1, shards);
    let big_run = run_campaign("big", big.0, big.1, shards);

    let size_ratio = big_run.bs_minutes as f64 / small_run.bs_minutes as f64;
    let peak_ratio = big_run.peak_live_bytes as f64 / small_run.peak_live_bytes.max(1) as f64;
    let peak_rss = mtd_telemetry::alloc::peak_rss_bytes();

    let mut report = BenchReport::new(if fast {
        "scale: sharded out-of-core campaign runner (MTD_FAST smoke sizes)"
    } else {
        "scale: sharded out-of-core campaign runner at paper-like size"
    });
    report.field_raw("campaign_small", &json_for(&small_run));
    report.field_raw("campaign_big", &json_for(&big_run));
    report.field_raw("size_ratio", &format!("{size_ratio:.1}"));
    report.field_raw("peak_heap_ratio", &format!("{peak_ratio:.2}"));
    report.field_raw("alloc_gate_bytes", &gate.to_string());
    report.field_raw("test_battery_gate_bytes", &TEST_BATTERY_GATE.to_string());
    if let Some(rss) = peak_rss {
        report.field_raw("peak_rss_bytes", &rss.to_string());
    }
    report.write(&out_path);

    assert!(big_run.store_bytes > 0);
    assert!(
        big_run.peak_live_bytes < gate,
        "peak live heap {} exceeds the pinned gate {gate} — the campaign \
         runner is no longer out-of-core",
        big_run.peak_live_bytes
    );
    // Sublinearity: a 10x campaign must cost far less than 10x the peak
    // memory (the factor that does grow is the dense minute block, whose
    // width is days x 1440, shared by both sizes here). The group-bounded
    // cell map only saturates at real scale, so the CI smoke sizes get a
    // looser bound that still trips on fully linear materialization.
    let sublinear_bound = if fast {
        size_ratio * 0.8
    } else {
        size_ratio / 2.0
    };
    assert!(
        peak_ratio < sublinear_bound,
        "peak heap ratio {peak_ratio:.2} is not sublinear in the {size_ratio:.1}x size ratio \
         (bound {sublinear_bound:.1})"
    );
    eprintln!(
        "PASS: {size_ratio:.0}x campaign cost {peak_ratio:.2}x peak heap \
         (gate {gate} bytes)"
    );
}
