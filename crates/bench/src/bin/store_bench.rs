//! Records the persistence numbers behind `BENCH_store.json`: builds the
//! default scenario dataset, saves it in both formats, and times
//! file-backed loads (what the `fit --from` and `dataset import` paths
//! actually pay).
//!
//! Usage: `cargo run --release -p mtd-bench --bin store_bench [out.json]`

use mtd_bench::{time_median, DEFAULT_RUNS};
use mtd_dataset::store::{load_binary_with_threads, load_json, save_binary, save_json, verify};
use mtd_dataset::Dataset;
use mtd_netsim::geo::Topology;
use mtd_netsim::services::ServiceCatalog;
use mtd_netsim::ScenarioConfig;
use std::fmt::Write as _;
use std::path::Path;

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_store.json".to_string());

    let config = ScenarioConfig::default();
    eprintln!(
        "building default scenario dataset ({} BS x {} days)...",
        config.n_bs, config.days
    );
    let topology = Topology::generate(config.n_bs, config.seed);
    let ds = Dataset::build(&config, &topology, &ServiceCatalog::paper());

    let dir = std::env::temp_dir().join("mtd_store_bench");
    std::fs::create_dir_all(&dir).unwrap();
    let bin_path = dir.join("default.bin");
    let json_path = dir.join("default.json");

    let save_binary_s = time_median(|| save_binary(&ds, &bin_path).unwrap());
    let save_json_s = time_median(|| save_json(&ds, &json_path).unwrap());
    let bin_size = std::fs::metadata(&bin_path).unwrap().len();
    let json_size = std::fs::metadata(&json_path).unwrap().len();

    let load_binary_s = time_median(|| check(load_binary_with_threads(&bin_path, 1), &ds));
    let load_binary_par_s = time_median(|| check(load_binary_with_threads(&bin_path, 4), &ds));
    let load_json_s = time_median(|| check(load_json(&json_path), &ds));
    let verify_s = time_median(|| assert!(verify(&bin_path).unwrap().is_clean()));

    std::fs::remove_file(&bin_path).ok();
    std::fs::remove_file(&json_path).ok();

    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(
        out,
        "  \"bench\": \"store: binary chunked format vs JSON fallback\","
    );
    let _ = writeln!(
        out,
        "  \"scenario\": {{\"preset\": \"default\", \"n_bs\": {}, \"days\": {}}},",
        config.n_bs, config.days
    );
    let _ = writeln!(out, "  \"runs_per_timing\": {DEFAULT_RUNS},");
    let _ = writeln!(out, "  \"statistic\": \"median wall-clock seconds\",");
    let _ = writeln!(
        out,
        "  \"file_bytes\": {{\"binary\": {bin_size}, \"json\": {json_size}}},"
    );
    let _ = writeln!(
        out,
        "  \"save_seconds\": {{\"binary\": {save_binary_s:.6}, \"json\": {save_json_s:.6}}},"
    );
    let _ = writeln!(
        out,
        "  \"load_seconds\": {{\"binary\": {load_binary_s:.6}, \"binary_4_threads\": {load_binary_par_s:.6}, \"json\": {load_json_s:.6}}},"
    );
    let _ = writeln!(out, "  \"verify_seconds\": {verify_s:.6},");
    let _ = writeln!(
        out,
        "  \"speedup_load_binary_over_json\": {:.2},",
        load_json_s / load_binary_s
    );
    let _ = writeln!(
        out,
        "  \"speedup_load_binary_4_threads_over_json\": {:.2}",
        load_json_s / load_binary_par_s
    );
    let _ = writeln!(out, "}}");

    std::fs::write(Path::new(&out_path), &out).unwrap();
    eprintln!("wrote {out_path}");
    print!("{out}");
}

/// Every timed load is also checked against the in-memory dataset so the
/// benchmark cannot quietly time a wrong or partial decode.
fn check<E: std::fmt::Debug>(loaded: Result<Dataset, E>, expected: &Dataset) -> Dataset {
    let loaded = loaded.unwrap();
    assert!(loaded == *expected, "loaded dataset differs from original");
    loaded
}
