//! Records the persistence numbers behind `BENCH_store.json`: builds the
//! default scenario dataset, saves it in both formats, and times
//! file-backed loads (what the `fit --from` and `dataset import` paths
//! actually pay).
//!
//! Usage: `cargo run --release -p mtd-bench --bin store_bench [out.json]`

use mtd_bench::{time_median, BenchReport};
use mtd_dataset::store::{load_binary_with_threads, load_json, save_binary, save_json, verify};
use mtd_dataset::Dataset;
use mtd_netsim::geo::Topology;
use mtd_netsim::services::ServiceCatalog;
use mtd_netsim::ScenarioConfig;

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_store.json".to_string());

    let config = ScenarioConfig::default();
    eprintln!(
        "building default scenario dataset ({} BS x {} days)...",
        config.n_bs, config.days
    );
    let topology = Topology::generate(config.n_bs, config.seed);
    let ds = Dataset::build(&config, &topology, &ServiceCatalog::paper());

    let dir = std::env::temp_dir().join("mtd_store_bench");
    std::fs::create_dir_all(&dir).unwrap();
    let bin_path = dir.join("default.bin");
    let json_path = dir.join("default.json");

    let save_binary_s = time_median(|| save_binary(&ds, &bin_path).unwrap());
    let save_json_s = time_median(|| save_json(&ds, &json_path).unwrap());
    let bin_size = std::fs::metadata(&bin_path).unwrap().len();
    let json_size = std::fs::metadata(&json_path).unwrap().len();

    let load_binary_s = time_median(|| check(load_binary_with_threads(&bin_path, 1), &ds));
    let load_binary_par_s = time_median(|| check(load_binary_with_threads(&bin_path, 4), &ds));
    let load_json_s = time_median(|| check(load_json(&json_path), &ds));
    let verify_s = time_median(|| assert!(verify(&bin_path).unwrap().is_clean()));

    std::fs::remove_file(&bin_path).ok();
    std::fs::remove_file(&json_path).ok();

    let mut report = BenchReport::new("store: binary chunked format vs JSON fallback");
    report.field_raw(
        "scenario",
        &format!(
            "{{\"preset\": \"default\", \"n_bs\": {}, \"days\": {}}}",
            config.n_bs, config.days
        ),
    );
    report.field_raw(
        "file_bytes",
        &format!("{{\"binary\": {bin_size}, \"json\": {json_size}}}"),
    );
    report.field_raw(
        "save_seconds",
        &format!("{{\"binary\": {save_binary_s:.6}, \"json\": {save_json_s:.6}}}"),
    );
    report.field_raw(
        "load_seconds",
        &format!(
            "{{\"binary\": {load_binary_s:.6}, \"binary_4_threads\": {load_binary_par_s:.6}, \"json\": {load_json_s:.6}}}"
        ),
    );
    report.field_seconds("verify_seconds", verify_s);
    report.field_raw(
        "speedup_load_binary_over_json",
        &format!("{:.2}", load_json_s / load_binary_s),
    );
    report.field_raw(
        "speedup_load_binary_4_threads_over_json",
        &format!("{:.2}", load_json_s / load_binary_par_s),
    );
    report.write(&out_path);
}

/// Every timed load is also checked against the in-memory dataset so the
/// benchmark cannot quietly time a wrong or partial decode.
fn check<E: std::fmt::Debug>(loaded: Result<Dataset, E>, expected: &Dataset) -> Dataset {
    let loaded = loaded.unwrap();
    assert!(loaded == *expected, "loaded dataset differs from original");
    loaded
}
