//! Shared fixtures for the benchmark suite: a small but fully-populated
//! measurement dataset and its fitted registry, built once per process.

use mtd_core::pipeline::fit_registry;
use mtd_core::registry::ModelRegistry;
use mtd_dataset::Dataset;
use mtd_netsim::geo::Topology;
use mtd_netsim::services::ServiceCatalog;
use mtd_netsim::ScenarioConfig;
use std::sync::OnceLock;

/// The benchmark scenario: small enough to build in about a second,
/// large enough that per-figure benchmarks measure real work.
#[must_use]
pub fn bench_config() -> ScenarioConfig {
    ScenarioConfig {
        n_bs: 12,
        days: 7,
        arrival_scale: 0.06,
        seed: 99,
        ..ScenarioConfig::default()
    }
}

/// Shared fixture bundle.
pub struct Fixture {
    pub config: ScenarioConfig,
    pub topology: Topology,
    pub catalog: ServiceCatalog,
    pub dataset: Dataset,
    pub registry: ModelRegistry,
}

static FIXTURE: OnceLock<Fixture> = OnceLock::new();

/// Lazily builds and caches the fixture for all benches in a process.
#[must_use]
pub fn fixture() -> &'static Fixture {
    FIXTURE.get_or_init(|| {
        let config = bench_config();
        let topology = Topology::generate(config.n_bs, config.seed);
        let catalog = ServiceCatalog::paper();
        let dataset = Dataset::build(&config, &topology, &catalog);
        let registry = fit_registry(&dataset).expect("bench dataset fits");
        Fixture {
            config,
            topology,
            catalog,
            dataset,
            registry,
        }
    })
}
