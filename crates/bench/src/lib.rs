//! Shared fixtures and timing helpers for the benchmark suite: a small
//! but fully-populated measurement dataset and its fitted registry,
//! built once per process, plus the median-of-N wall-clock timer used by
//! the `BENCH_*.json` recorder binaries.

use mtd_core::pipeline::fit_registry;
use mtd_core::registry::ModelRegistry;
use mtd_dataset::Dataset;
use mtd_netsim::geo::Topology;
use mtd_netsim::services::ServiceCatalog;
use mtd_netsim::ScenarioConfig;
use std::sync::OnceLock;
use std::time::Instant;

/// Default sample count per timing: odd, so the median is an actual run.
pub const DEFAULT_RUNS: usize = 7;

/// Median wall-clock seconds over `runs` runs of `f`.
///
/// The median itself comes from [`mtd_math::stats::median_sorted`]: one
/// interpolation rule for every percentile in the workspace, instead of
/// a local `samples[len / 2]` that silently picks the upper-middle run
/// for even sample counts.
pub fn time_median_of<T>(runs: usize, mut f: impl FnMut() -> T) -> f64 {
    assert!(runs > 0, "time_median_of needs at least one run");
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    mtd_math::stats::median_sorted(&samples).expect("runs > 0")
}

/// [`time_median_of`] with [`DEFAULT_RUNS`] samples.
pub fn time_median<T>(f: impl FnMut() -> T) -> f64 {
    time_median_of(DEFAULT_RUNS, f)
}

/// The machine a benchmark ran on — recorded in every `BENCH_*.json` so
/// speedup tables can be read in context (a 1-core container cannot show
/// a parallel speedup, however good the runtime is).
#[derive(Debug, Clone)]
pub struct MachineInfo {
    /// `std::thread::available_parallelism()` at benchmark time.
    pub detected_cores: usize,
    /// CPU model string from `/proc/cpuinfo` (`"unknown"` elsewhere).
    pub cpu_model: String,
    /// `os/arch`, e.g. `linux/x86_64`.
    pub os: String,
}

/// Probes the current machine.
#[must_use]
pub fn machine_info() -> MachineInfo {
    MachineInfo {
        detected_cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        cpu_model: cpu_model(),
        os: format!("{}/{}", std::env::consts::OS, std::env::consts::ARCH),
    }
}

fn cpu_model() -> String {
    let Ok(text) = std::fs::read_to_string("/proc/cpuinfo") else {
        return "unknown".to_string();
    };
    // x86 exposes "model name", ARM "Hardware" or "CPU part"; take the
    // first match in that order of preference.
    for key in ["model name", "Hardware", "CPU part"] {
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix(key) {
                if let Some((_, value)) = rest.split_once(':') {
                    let value = value.trim();
                    if !value.is_empty() {
                        return value.to_string();
                    }
                }
            }
        }
    }
    "unknown".to_string()
}

/// Ordered JSON-object builder for the `BENCH_*.json` artifacts: every
/// report opens with the same header (bench name, machine metadata, run
/// count, statistic) so the recorder binaries cannot drift apart, and
/// values are raw JSON fragments so nested objects stay one-liners.
pub struct BenchReport {
    fields: Vec<(String, String)>,
}

impl BenchReport {
    /// Starts a report: `bench` + machine metadata + timing provenance.
    #[must_use]
    pub fn new(bench: &str) -> BenchReport {
        let m = machine_info();
        let mut report = BenchReport { fields: Vec::new() };
        report.field_str("bench", bench);
        report.field_raw(
            "machine",
            &format!(
                "{{\"detected_cores\": {}, \"cpu_model\": \"{}\", \"os\": \"{}\"}}",
                m.detected_cores,
                escape_json(&m.cpu_model),
                escape_json(&m.os)
            ),
        );
        report.field_raw("detected_cores", &m.detected_cores.to_string());
        report.field_raw("runs_per_timing", &DEFAULT_RUNS.to_string());
        report.field_str("statistic", "median wall-clock seconds");
        report
    }

    /// Appends a string-valued field (escaped).
    pub fn field_str(&mut self, key: &str, value: &str) {
        self.field_raw(key, &format!("\"{}\"", escape_json(value)));
    }

    /// Appends a field whose value is already valid JSON (number, bool,
    /// or a hand-built object/array).
    pub fn field_raw(&mut self, key: &str, raw_json: &str) {
        self.fields.push((key.to_string(), raw_json.to_string()));
    }

    /// Appends a float with 6-digit precision (the timing convention).
    pub fn field_seconds(&mut self, key: &str, seconds: f64) {
        self.field_raw(key, &format!("{seconds:.6}"));
    }

    /// Renders the report as pretty-printed JSON (2-space indent, one
    /// field per line, insertion order).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        for (i, (key, value)) in self.fields.iter().enumerate() {
            let comma = if i + 1 < self.fields.len() { "," } else { "" };
            out.push_str(&format!("  \"{key}\": {value}{comma}\n"));
        }
        out.push_str("}\n");
        out
    }

    /// Writes the report to `path` and echoes it to stdout (what every
    /// recorder binary did by hand before).
    pub fn write(&self, path: &str) {
        let json = self.to_json();
        std::fs::write(path, &json).expect("write bench report");
        eprintln!("wrote {path}");
        print!("{json}");
    }
}

fn escape_json(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// The benchmark scenario: small enough to build in about a second,
/// large enough that per-figure benchmarks measure real work.
#[must_use]
pub fn bench_config() -> ScenarioConfig {
    ScenarioConfig {
        n_bs: 12,
        days: 7,
        arrival_scale: 0.06,
        seed: 99,
        ..ScenarioConfig::default()
    }
}

/// Shared fixture bundle.
pub struct Fixture {
    pub config: ScenarioConfig,
    pub topology: Topology,
    pub catalog: ServiceCatalog,
    pub dataset: Dataset,
    pub registry: ModelRegistry,
}

static FIXTURE: OnceLock<Fixture> = OnceLock::new();

/// Lazily builds and caches the fixture for all benches in a process.
#[must_use]
pub fn fixture() -> &'static Fixture {
    FIXTURE.get_or_init(|| {
        let config = bench_config();
        let topology = Topology::generate(config.n_bs, config.seed);
        let catalog = ServiceCatalog::paper();
        let dataset = Dataset::build(&config, &topology, &catalog);
        let registry = fit_registry(&dataset).expect("bench dataset fits");
        Fixture {
            config,
            topology,
            catalog,
            dataset,
            registry,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_info_is_populated() {
        let m = machine_info();
        assert!(m.detected_cores >= 1);
        assert!(!m.cpu_model.is_empty());
        assert!(m.os.contains('/'));
    }

    #[test]
    fn bench_report_has_machine_header_and_is_balanced() {
        let mut r = BenchReport::new("demo bench");
        r.field_seconds("fit_seconds", 1.23456789);
        r.field_raw("speedup", "{\"threads_2\": 1.95}");
        let json = r.to_json();
        assert!(json.starts_with("{\n"));
        assert!(json.ends_with("}\n"));
        assert!(json.contains("\"bench\": \"demo bench\""));
        assert!(json.contains("\"machine\": {\"detected_cores\": "));
        assert!(json.contains("\"cpu_model\": "));
        assert!(json.contains("\"fit_seconds\": 1.234568"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        // No trailing comma before the closing brace.
        assert!(!json.contains(",\n}"));
    }

    #[test]
    fn escape_json_handles_quotes_and_controls() {
        assert_eq!(escape_json("a\"b\\c\u{1}"), "a\\\"b\\\\c\\u0001");
    }

    #[test]
    fn time_median_interpolates_even_run_counts() {
        // With 2 runs the median must be between the two samples, not
        // simply the larger one — regression test for the old
        // `samples[len / 2]` indexing.
        let mut calls = 0u32;
        let s = time_median_of(2, || {
            calls += 1;
            std::thread::sleep(std::time::Duration::from_millis(1));
        });
        assert_eq!(calls, 2);
        assert!(s >= 0.001);
    }
}
