//! Shared fixtures and timing helpers for the benchmark suite: a small
//! but fully-populated measurement dataset and its fitted registry,
//! built once per process, plus the median-of-N wall-clock timer used by
//! the `BENCH_*.json` recorder binaries.

use mtd_core::pipeline::fit_registry;
use mtd_core::registry::ModelRegistry;
use mtd_dataset::Dataset;
use mtd_netsim::geo::Topology;
use mtd_netsim::services::ServiceCatalog;
use mtd_netsim::ScenarioConfig;
use std::sync::OnceLock;
use std::time::Instant;

/// Default sample count per timing: odd, so the median is an actual run.
pub const DEFAULT_RUNS: usize = 7;

/// Median wall-clock seconds over `runs` runs of `f`.
pub fn time_median_of<T>(runs: usize, mut f: impl FnMut() -> T) -> f64 {
    assert!(runs > 0, "time_median_of needs at least one run");
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// [`time_median_of`] with [`DEFAULT_RUNS`] samples.
pub fn time_median<T>(f: impl FnMut() -> T) -> f64 {
    time_median_of(DEFAULT_RUNS, f)
}

/// The benchmark scenario: small enough to build in about a second,
/// large enough that per-figure benchmarks measure real work.
#[must_use]
pub fn bench_config() -> ScenarioConfig {
    ScenarioConfig {
        n_bs: 12,
        days: 7,
        arrival_scale: 0.06,
        seed: 99,
        ..ScenarioConfig::default()
    }
}

/// Shared fixture bundle.
pub struct Fixture {
    pub config: ScenarioConfig,
    pub topology: Topology,
    pub catalog: ServiceCatalog,
    pub dataset: Dataset,
    pub registry: ModelRegistry,
}

static FIXTURE: OnceLock<Fixture> = OnceLock::new();

/// Lazily builds and caches the fixture for all benches in a process.
#[must_use]
pub fn fixture() -> &'static Fixture {
    FIXTURE.get_or_init(|| {
        let config = bench_config();
        let topology = Topology::generate(config.n_bs, config.seed);
        let catalog = ServiceCatalog::paper();
        let dataset = Dataset::build(&config, &topology, &catalog);
        let registry = fit_registry(&dataset).expect("bench dataset fits");
        Fixture {
            config,
            topology,
            catalog,
            dataset,
            registry,
        }
    })
}
