//! End-to-end pipeline differential harness under deterministic fault
//! injection.
//!
//! One fixed, small measurement scenario is driven through the whole
//! pipeline — build dataset → engine replay → fit → sample → binary
//! export → re-import → JSON round-trip → re-fit — with a canonical
//! [`digest`](crate::digest) captured after every stage. The contract
//! the harness enforces, for *any* [`mtd_fault::FaultPlan`]:
//!
//! 1. the run produces **byte-identical** stage digests to the
//!    fault-free golden run, or
//! 2. it fails with a **structured error** attributed to a stage —
//!    never a panic, never a torn output file (no destination written
//!    by a failed export, no leaked `*.tmp-partial`), and never a
//!    silently different result.
//!
//! [`selftest`] runs a roster of seeded plans and produces a
//! deterministic report; `mtd-traffic selftest` is its CLI face. Every
//! failing plan prints a repro line (`mtd-traffic selftest --seed …
//! --faults '…'`) so CI failures replay locally.
//!
//! Everything here is seed-deterministic: two invocations with the same
//! master seed, plan count, thread count and work directory produce
//! byte-identical reports (CI runs the selftest twice and `cmp`s them).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

use mtd_core::pipeline::fit_registry_pooled;
use mtd_core::volume::VolumeFitConfig;
use mtd_core::SessionGenerator;
use mtd_dataset::{store, Dataset};
use mtd_fault::FaultPlan;
use mtd_netsim::engine::Engine;
use mtd_netsim::geo::Topology;
use mtd_netsim::services::ServiceCatalog;
use mtd_netsim::ScenarioConfig;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::digest::{digest_bytes, digest_dataset, digest_registry, digest_sessions, DigestSink};

/// RNG seed for the sampling stage — fixed so only the fault plan (never
/// the sampled stream) varies between runs.
const SAMPLE_SEED: u64 = 0x5EED_5A3D;

/// Decile whose arrival model drives the sampling stage.
const SAMPLE_DECILE: u8 = 9;

/// The fixed chaos scenario: small enough that a full pipeline pass
/// takes well under a second, large enough that every subsystem
/// (mobility, multi-peak volume fits, parallel encode) does real work.
#[must_use]
pub fn scenario() -> ScenarioConfig {
    ScenarioConfig {
        n_bs: 6,
        days: 1,
        arrival_scale: 0.08,
        ..ScenarioConfig::small_test()
    }
}

/// The stress-scenario twin: every stress family armed at once (bursts,
/// drift and control-plane together), so the chaos harness also drives
/// the extra RNG draws, the window-indexed shifts and the v2 store path
/// with its Signaling frames under fault injection.
#[must_use]
pub fn stress_scenario() -> ScenarioConfig {
    ScenarioConfig {
        stress: mtd_netsim::StressConfig {
            burst_prob: 0.1,
            burst_tail_index: 1.3,
            burst_coupling: 0.5,
            drift_mu_per_window: 0.2,
            drift_sigma_per_window: 0.1,
            drift_window_days: 1,
            control_plane: true,
        },
        ..scenario()
    }
}

/// Canonical digest of every pipeline stage from one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageDigests {
    /// Built measurement dataset (canonical binary encoding).
    pub dataset: u64,
    /// Engine observation stream + run stats.
    pub engine: u64,
    /// Fitted model registry.
    pub registry: u64,
    /// One sampled synthetic day.
    pub sessions: u64,
    /// Exported binary image.
    pub export: u64,
    /// Dataset re-imported from the binary file.
    pub reimport: u64,
    /// Dataset after a JSON save/load round-trip.
    pub json_roundtrip: u64,
    /// Registry re-fitted from the re-imported dataset.
    pub refit: u64,
    /// Stress-scenario dataset (all families armed) after a v2 binary
    /// export → re-import round-trip, digested via its canonical
    /// re-encoding so the Signaling plane is covered byte-for-byte.
    pub stress: u64,
}

impl StageDigests {
    /// Names of the stages whose digests differ from `other`.
    #[must_use]
    pub fn diff(&self, other: &StageDigests) -> Vec<&'static str> {
        let pairs = [
            ("dataset", self.dataset, other.dataset),
            ("engine", self.engine, other.engine),
            ("registry", self.registry, other.registry),
            ("sessions", self.sessions, other.sessions),
            ("export", self.export, other.export),
            ("reimport", self.reimport, other.reimport),
            ("json_roundtrip", self.json_roundtrip, other.json_roundtrip),
            ("refit", self.refit, other.refit),
            ("stress", self.stress, other.stress),
        ];
        pairs
            .iter()
            .filter(|(_, a, b)| a != b)
            .map(|(name, _, _)| *name)
            .collect()
    }
}

/// How one pipeline run under a fault plan ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunOutcome {
    /// Every stage completed; digests attached.
    Clean(StageDigests),
    /// A stage failed with a structured error (the acceptable way to
    /// fail under injected faults).
    Detected {
        /// Pipeline stage that reported the error.
        stage: &'static str,
        /// The error's display form.
        error: String,
    },
    /// A stage panicked — always a harness failure.
    Panicked {
        /// Panic payload, when it was a string.
        message: String,
    },
}

/// Runs the full pipeline once in `dir`, mapping every stage error to
/// [`RunOutcome::Detected`] and any panic to [`RunOutcome::Panicked`].
/// Faults (if any) must already be installed by the caller.
#[must_use]
pub fn run_pipeline(threads: usize, dir: &Path) -> RunOutcome {
    let result = catch_unwind(AssertUnwindSafe(|| run_pipeline_inner(threads, dir)));
    match result {
        Ok(outcome) => outcome,
        Err(payload) => {
            let message = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .unwrap_or_else(|| "non-string panic payload".to_string());
            RunOutcome::Panicked { message }
        }
    }
}

fn run_pipeline_inner(threads: usize, dir: &Path) -> RunOutcome {
    let config = scenario();
    let topology = Topology::generate(config.n_bs, config.seed);
    let catalog = ServiceCatalog::paper();

    let dataset = Dataset::build(&config, &topology, &catalog);
    let d_dataset = digest_dataset(&dataset);

    let engine = Engine::new(&config, &topology, &catalog);
    let mut sink = DigestSink::new();
    let stats = engine.run_parallel(&mut sink, threads);
    let d_engine = sink.finish_with_stats(&stats);

    let pool = mtd_par::Pool::new(threads);
    let volume_config = VolumeFitConfig::default();
    let registry = match fit_registry_pooled(&dataset, &volume_config, &pool) {
        Ok(r) => r,
        Err(e) => {
            return RunOutcome::Detected {
                stage: "fit",
                error: e.to_string(),
            }
        }
    };
    let d_registry = digest_registry(&registry);

    let generator = match SessionGenerator::new(&registry) {
        Ok(g) => g,
        Err(e) => {
            return RunOutcome::Detected {
                stage: "sample",
                error: e.to_string(),
            }
        }
    };
    let mut rng = SmallRng::seed_from_u64(SAMPLE_SEED);
    let day = generator.generate_day(SAMPLE_DECILE, &mut rng);
    let d_sessions = digest_sessions(&day);

    let bin_path = binary_path(dir);
    let d_export = digest_bytes(&store::encode_binary(&dataset, threads));
    if let Err(e) = store::save_binary_with_threads(&dataset, &bin_path, threads) {
        return RunOutcome::Detected {
            stage: "export",
            error: e.to_string(),
        };
    }

    let imported = match store::load_binary_with_threads(&bin_path, threads) {
        Ok(ds) => ds,
        Err(e) => {
            return RunOutcome::Detected {
                stage: "import",
                error: e.to_string(),
            }
        }
    };
    let d_reimport = digest_dataset(&imported);

    let json_path = json_path(dir);
    if let Err(e) = store::save_json(&dataset, &json_path) {
        return RunOutcome::Detected {
            stage: "json-export",
            error: e.to_string(),
        };
    }
    let json_loaded = match store::load_json(&json_path) {
        Ok(ds) => ds,
        Err(e) => {
            return RunOutcome::Detected {
                stage: "json-import",
                error: e.to_string(),
            }
        }
    };
    let d_json = digest_dataset(&json_loaded);

    let refit = match fit_registry_pooled(&imported, &volume_config, &pool) {
        Ok(r) => r,
        Err(e) => {
            return RunOutcome::Detected {
                stage: "refit",
                error: e.to_string(),
            }
        }
    };
    let d_refit = digest_registry(&refit);

    // Stress-scenario stage: the all-families-armed twin through the
    // v2 binary store (Signaling frames included) and back.
    let stress_config = stress_scenario();
    let stressed = Dataset::build(&stress_config, &topology, &catalog);
    let stress_path = stress_path(dir);
    if let Err(e) = store::save_binary_with_threads(&stressed, &stress_path, threads) {
        return RunOutcome::Detected {
            stage: "stress-export",
            error: e.to_string(),
        };
    }
    let stress_back = match store::load_binary_with_threads(&stress_path, threads) {
        Ok(ds) => ds,
        Err(e) => {
            return RunOutcome::Detected {
                stage: "stress-import",
                error: e.to_string(),
            }
        }
    };
    let d_stress = digest_bytes(&store::encode_binary(&stress_back, threads));

    RunOutcome::Clean(StageDigests {
        dataset: d_dataset,
        engine: d_engine,
        registry: d_registry,
        sessions: d_sessions,
        export: d_export,
        reimport: d_reimport,
        json_roundtrip: d_json,
        refit: d_refit,
        stress: d_stress,
    })
}

fn binary_path(dir: &Path) -> PathBuf {
    dir.join("chaos-dataset.mtd")
}

fn json_path(dir: &Path) -> PathBuf {
    dir.join("chaos-dataset.json")
}

fn stress_path(dir: &Path) -> PathBuf {
    dir.join("chaos-stress.mtd")
}

/// Verdict for one fault plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Pipeline completed bit-identical to the golden run.
    Pass,
    /// A fault was detected and reported as a structured error, with all
    /// file invariants intact.
    DetectedOk {
        /// Stage that detected the fault.
        stage: String,
    },
    /// The harness caught a contract violation: a panic, a torn file, a
    /// leaked temp file, or silent divergence from the golden digests.
    Fail {
        /// Diagnosis.
        reason: String,
    },
}

/// One plan's outcome, fired-site accounting, and repro line.
#[derive(Debug, Clone)]
pub struct PlanRun {
    /// Fault plan spec (as given to `--faults`).
    pub spec: String,
    /// Plan seed.
    pub seed: u64,
    /// Verdict.
    pub verdict: Verdict,
    /// `(site, rolls, fired)` for every sequential site in the plan.
    pub fired: Vec<(String, u64, u64)>,
    /// Bounded injection trace (`site#roll` events, oldest first).
    pub trace: Vec<String>,
    /// Command line that replays exactly this plan.
    pub repro: String,
}

/// Runs one fault plan in its own directory and classifies the outcome
/// against `golden`.
pub fn run_plan(plan: FaultPlan, golden: &StageDigests, threads: usize, dir: &Path) -> PlanRun {
    let spec = plan.spec.clone();
    let seed = plan.seed;
    let repro = plan.repro_line();

    mtd_fault::clear();
    std::fs::remove_dir_all(dir).ok();
    std::fs::create_dir_all(dir).expect("create plan work directory");

    mtd_fault::install(plan);
    let outcome = run_pipeline(threads, dir);
    let fired = mtd_fault::fired_counts();
    let trace = mtd_fault::trace();
    mtd_fault::clear();

    // File-system invariants are checked with faults cleared so the
    // harness's own directory scan cannot itself be perturbed.
    let verdict = classify(&outcome, golden, dir);
    PlanRun {
        spec,
        seed,
        verdict,
        fired,
        trace,
        repro,
    }
}

fn classify(outcome: &RunOutcome, golden: &StageDigests, dir: &Path) -> Verdict {
    if let Some(leak) = find_temp_leak(dir) {
        return Verdict::Fail {
            reason: format!("leaked temp file: {}", leak.display()),
        };
    }
    match outcome {
        RunOutcome::Panicked { message } => Verdict::Fail {
            reason: format!("panicked: {message}"),
        },
        RunOutcome::Clean(digests) => {
            let diff = digests.diff(golden);
            if diff.is_empty() {
                Verdict::Pass
            } else {
                Verdict::Fail {
                    reason: format!(
                        "silent divergence: stage digests differ from golden at [{}]",
                        diff.join(", ")
                    ),
                }
            }
        }
        RunOutcome::Detected { stage, error } => {
            // A failed export must leave no destination behind — the
            // store's atomic temp-file + rename protocol guarantees it.
            // (This is exactly the invariant the `store.write.skip_atomic`
            // mutation site breaks, and the harness must notice.)
            let torn = match *stage {
                "export" => binary_path(dir).exists().then(|| binary_path(dir)),
                "json-export" => json_path(dir).exists().then(|| json_path(dir)),
                "stress-export" => stress_path(dir).exists().then(|| stress_path(dir)),
                _ => None,
            };
            if let Some(path) = torn {
                return Verdict::Fail {
                    reason: format!(
                        "torn file: {stage} failed ({error}) but destination {} exists",
                        path.display()
                    ),
                };
            }
            Verdict::DetectedOk {
                stage: (*stage).to_string(),
            }
        }
    }
}

/// First leaked `*.tmp-partial` file under `dir`, if any.
fn find_temp_leak(dir: &Path) -> Option<PathBuf> {
    let entries = std::fs::read_dir(dir).ok()?;
    let mut leaks: Vec<PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.extension()
                .map(|ext| ext.to_string_lossy().starts_with("tmp-"))
                .unwrap_or(false)
        })
        .collect();
    leaks.sort();
    leaks.into_iter().next()
}

/// Full selftest result: golden digests plus one [`PlanRun`] per plan.
#[derive(Debug, Clone)]
pub struct SelftestReport {
    /// Master seed plan seeds were derived from.
    pub master_seed: u64,
    /// Thread count used for every run (golden verified at 1 and at
    /// this count).
    pub threads: u64,
    /// Fault-free stage digests.
    pub golden: StageDigests,
    /// Per-plan outcomes, in roster order.
    pub runs: Vec<PlanRun>,
    /// True iff no plan produced a [`Verdict::Fail`].
    pub passed: bool,
}

impl SelftestReport {
    /// Plans that violated the chaos contract.
    #[must_use]
    pub fn failures(&self) -> Vec<&PlanRun> {
        self.runs
            .iter()
            .filter(|r| matches!(r.verdict, Verdict::Fail { .. }))
            .collect()
    }

    /// Deterministic JSON rendering (hand-rolled: the report must be
    /// byte-identical across repeated runs so CI can `cmp` two files,
    /// and must not depend on the serde stubbing of offline builds).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        out.push_str(&format!("  \"master_seed\": {},\n", self.master_seed));
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str(&format!("  \"passed\": {},\n", self.passed));
        out.push_str(&format!(
            "  \"golden\": {{\"dataset\": \"{:016x}\", \"engine\": \"{:016x}\", \
             \"registry\": \"{:016x}\", \"sessions\": \"{:016x}\", \"export\": \"{:016x}\", \
             \"reimport\": \"{:016x}\", \"json_roundtrip\": \"{:016x}\", \"refit\": \"{:016x}\", \
             \"stress\": \"{:016x}\"}},\n",
            self.golden.dataset,
            self.golden.engine,
            self.golden.registry,
            self.golden.sessions,
            self.golden.export,
            self.golden.reimport,
            self.golden.json_roundtrip,
            self.golden.refit,
            self.golden.stress,
        ));
        out.push_str("  \"runs\": [\n");
        for (i, run) in self.runs.iter().enumerate() {
            let verdict = match &run.verdict {
                Verdict::Pass => "pass".to_string(),
                Verdict::DetectedOk { stage } => format!("detected:{stage}"),
                Verdict::Fail { reason } => format!("FAIL:{reason}"),
            };
            out.push_str("    {");
            out.push_str(&format!("\"spec\": \"{}\", ", json_escape(&run.spec)));
            out.push_str(&format!("\"seed\": {}, ", run.seed));
            out.push_str(&format!("\"verdict\": \"{}\", ", json_escape(&verdict)));
            out.push_str(&format!("\"repro\": \"{}\", ", json_escape(&run.repro)));
            out.push_str("\"fired\": [");
            for (j, (site, rolls, fired)) in run.fired.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("[\"{}\", {rolls}, {fired}]", json_escape(site)));
            }
            out.push_str("], \"trace\": [");
            for (j, event) in run.trace.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("\"{}\"", json_escape(event)));
            }
            out.push_str("]}");
            out.push_str(if i + 1 < self.runs.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Runs `plans` explicitly-parsed fault plans against a fault-free
/// golden run (verified thread-invariant at 1 vs `threads` workers).
///
/// Plan `i` uses roster spec `i % roster.len()` and seed
/// `derive_seed(master_seed, i)`, so `--plans 32` covers the whole
/// roster twice with independent seeds. Errors are setup problems
/// (fault runtime not compiled in, unwritable workdir, a golden run
/// that is not clean); injected-fault contract violations are reported
/// per-plan via [`Verdict::Fail`] and `passed: false`, not `Err`.
pub fn selftest(
    master_seed: u64,
    plans: &[FaultPlan],
    threads: usize,
    workdir: &Path,
) -> Result<SelftestReport, String> {
    if !mtd_fault::compiled_in() {
        return Err(
            "fault injection not compiled in: rebuild with --features mtd-fault/fault-inject"
                .to_string(),
        );
    }
    mtd_fault::clear();
    std::fs::create_dir_all(workdir).map_err(|e| format!("workdir: {e}"))?;

    let golden_dir = workdir.join("golden");
    std::fs::remove_dir_all(&golden_dir).ok();
    std::fs::create_dir_all(&golden_dir).map_err(|e| format!("workdir: {e}"))?;
    let golden = match run_pipeline(1, &golden_dir) {
        RunOutcome::Clean(d) => d,
        other => return Err(format!("golden run (1 thread) was not clean: {other:?}")),
    };
    let golden_n = match run_pipeline(threads, &golden_dir) {
        RunOutcome::Clean(d) => d,
        other => {
            return Err(format!(
                "golden run ({threads} threads) was not clean: {other:?}"
            ))
        }
    };
    if golden_n != golden {
        return Err(format!(
            "golden run diverges between 1 and {threads} threads at [{}]",
            golden_n.diff(&golden).join(", ")
        ));
    }

    let mut runs = Vec::with_capacity(plans.len());
    for (i, plan) in plans.iter().enumerate() {
        let dir = workdir.join(format!("plan-{i:03}"));
        runs.push(run_plan(plan.clone(), &golden, threads, &dir));
    }
    let passed = runs
        .iter()
        .all(|r| !matches!(r.verdict, Verdict::Fail { .. }));
    Ok(SelftestReport {
        master_seed,
        threads: threads as u64,
        golden,
        runs,
        passed,
    })
}

/// The default selftest plan list: `n` seeded plans cycling through
/// [`mtd_fault::roster`], with per-plan seeds derived from
/// `master_seed`.
#[must_use]
pub fn roster_plans(master_seed: u64, n: usize) -> Vec<FaultPlan> {
    let roster = mtd_fault::roster();
    (0..n)
        .map(|i| {
            let spec = roster[i % roster.len()];
            let seed = mtd_fault::derive_seed(master_seed, i as u64);
            FaultPlan::parse(spec, seed).expect("roster specs always parse")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_plans_cycle_and_derive_distinct_seeds() {
        let plans = roster_plans(42, 20);
        assert_eq!(plans.len(), 20);
        let roster = mtd_fault::roster();
        assert_eq!(plans[0].spec, roster[0]);
        assert_eq!(plans[roster.len()].spec, roster[0], "cycles after roster");
        assert_ne!(
            plans[0].seed,
            plans[roster.len()].seed,
            "same spec, independent seed"
        );
    }

    #[test]
    fn stage_digest_diff_names_the_divergent_stage() {
        let a = StageDigests {
            dataset: 1,
            engine: 2,
            registry: 3,
            sessions: 4,
            export: 5,
            reimport: 6,
            json_roundtrip: 7,
            refit: 8,
            stress: 9,
        };
        let mut b = a;
        assert!(a.diff(&b).is_empty());
        b.registry = 99;
        b.refit = 99;
        assert_eq!(a.diff(&b), vec!["registry", "refit"]);
    }

    #[test]
    fn report_json_is_deterministic_and_escapes() {
        let report = SelftestReport {
            master_seed: 7,
            threads: 4,
            golden: StageDigests {
                dataset: 1,
                engine: 2,
                registry: 3,
                sessions: 4,
                export: 5,
                reimport: 6,
                json_roundtrip: 7,
                refit: 8,
                stress: 9,
            },
            runs: vec![PlanRun {
                spec: "store=0.5".to_string(),
                seed: 9,
                verdict: Verdict::Fail {
                    reason: "torn \"file\"\nsecond line".to_string(),
                },
                fired: vec![("store.write.short".to_string(), 3, 1)],
                trace: vec!["store.write.short#2".to_string()],
                repro: "mtd-traffic selftest --seed 9 --faults 'store=0.5'".to_string(),
            }],
            passed: false,
        };
        let a = report.to_json();
        let b = report.to_json();
        assert_eq!(a, b);
        assert!(a.contains("\\\"file\\\"\\nsecond line"));
        assert!(a.contains("\"passed\": false"));
    }
}
