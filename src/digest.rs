//! Canonical, serde-free stage digests for the chaos harness.
//!
//! Every pipeline stage (measurement dataset, fitted registry, sampled
//! sessions, engine replay, exported bytes) reduces to one `u64` via
//! FNV-1a over a canonical byte stream: fixed field order, little-endian
//! integers, `f64::to_bits` for floats, length-prefixed strings and
//! sequences. Two runs produce the same digest iff every contributing
//! bit is identical — exactly the granularity the differential harness
//! needs, with no serde (the offline stub cannot serialize) and no
//! allocation beyond the dataset's own canonical encoding.

use mobile_traffic_dists_core_reexports::*;

/// Internal alias module so the digest functions can name types tersely.
mod mobile_traffic_dists_core_reexports {
    pub use mtd_core::{GeneratedSession, ModelRegistry};
    pub use mtd_dataset::Dataset;
    pub use mtd_netsim::engine::{EngineSink, RunStats};
    pub use mtd_netsim::session::SessionObservation;
}

/// Streaming FNV-1a 64-bit hasher over a canonical byte encoding.
#[derive(Debug, Clone)]
pub struct Digest {
    state: u64,
}

impl Default for Digest {
    fn default() -> Digest {
        Digest::new()
    }
}

impl Digest {
    /// FNV-1a offset basis.
    #[must_use]
    pub fn new() -> Digest {
        Digest {
            state: 0xcbf2_9ce4_8422_2325,
        }
    }

    /// Folds raw bytes.
    pub fn bytes(&mut self, bytes: &[u8]) {
        for b in bytes {
            self.state ^= u64::from(*b);
            self.state = self.state.wrapping_mul(0x100_0000_01b3);
        }
    }

    /// Folds a `u64` (little-endian).
    pub fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    /// Folds a `u32` (little-endian).
    pub fn u32(&mut self, v: u32) {
        self.bytes(&v.to_le_bytes());
    }

    /// Folds a `usize` as `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Folds an `f64` by bit pattern (so `-0.0 != 0.0` and NaNs are
    /// payload-exact — bit identity, not numeric equality).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Folds an `f32` by bit pattern.
    pub fn f32(&mut self, v: f32) {
        self.u32(v.to_bits());
    }

    /// Folds a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.bytes(&[u8::from(v)]);
    }

    /// Folds a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.bytes(s.as_bytes());
    }

    /// The digest value.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// Digest of a raw byte image (e.g. an encoded store file).
#[must_use]
pub fn digest_bytes(bytes: &[u8]) -> u64 {
    let mut d = Digest::new();
    d.usize(bytes.len());
    d.bytes(bytes);
    d.finish()
}

/// Digest of a measurement dataset via its canonical single-threaded
/// binary encoding (bit-exact and thread-invariant by the mtd-store v2
/// contract, so no second canonical form is needed here).
#[must_use]
pub fn digest_dataset(ds: &Dataset) -> u64 {
    digest_bytes(&mtd_dataset::store::encode_binary(ds, 1))
}

/// Digest of a fitted model registry: every released parameter, in
/// service then decile order.
#[must_use]
pub fn digest_registry(registry: &ModelRegistry) -> u64 {
    let mut d = Digest::new();
    d.usize(registry.services.len());
    for s in &registry.services {
        d.str(&s.name);
        d.f64(s.mu);
        d.f64(s.sigma);
        d.usize(s.peaks.len());
        for p in &s.peaks {
            d.f64(p.k);
            d.f64(p.mu);
            d.f64(p.sigma);
        }
        d.f64(s.alpha);
        d.f64(s.beta);
        d.f64(s.session_share);
        d.f64(s.duration_sigma);
        d.f64(s.support_log10.0);
        d.f64(s.support_log10.1);
        d.f64(s.quality.volume_emd);
        d.f64(s.quality.pair_r2);
    }
    d.usize(registry.arrivals.per_decile.len());
    for a in &registry.arrivals.per_decile {
        d.f64(a.peak_mu);
        d.f64(a.peak_sigma);
        d.f64(a.pareto_shape);
        d.f64(a.pareto_scale);
    }
    d.finish()
}

/// Digest of generated synthetic sessions, in generation order.
#[must_use]
pub fn digest_sessions(sessions: &[GeneratedSession]) -> u64 {
    let mut d = Digest::new();
    d.usize(sessions.len());
    for s in sessions {
        d.f64(s.start_s);
        d.u32(u32::from(s.service));
        d.f64(s.volume_mb);
        d.f64(s.duration_s);
        d.f64(s.throughput_mbps);
    }
    d.finish()
}

/// An [`EngineSink`] that digests the replayed observation stream —
/// order-sensitive, so it doubles as a check that parallel replay stays
/// in station order under scheduling perturbation.
#[derive(Debug, Default)]
pub struct DigestSink {
    digest: Digest,
    observations: u64,
}

impl DigestSink {
    /// A fresh sink.
    #[must_use]
    pub fn new() -> DigestSink {
        DigestSink::default()
    }

    /// Digest of everything observed so far, including the final
    /// [`RunStats`] when folded via [`DigestSink::finish_with_stats`].
    #[must_use]
    pub fn finish_with_stats(mut self, stats: &RunStats) -> u64 {
        self.digest.u64(self.observations);
        self.digest.u64(stats.sessions);
        self.digest.u64(stats.observations);
        self.digest.u64(stats.transient_observations);
        self.digest.f64(stats.total_volume_mb);
        self.digest.finish()
    }
}

impl EngineSink for DigestSink {
    fn on_observation(&mut self, obs: &SessionObservation) {
        self.observations += 1;
        self.digest.u64(obs.session.0);
        self.digest.u32(obs.bs.0);
        self.digest.u32(u32::from(obs.service.0));
        self.digest.u32(obs.start.day);
        self.digest.f64(obs.start.second);
        self.digest.f64(obs.duration_s);
        self.digest.f64(obs.volume_mb);
        self.digest.bool(obs.transient);
        self.digest.u32(u32::from(obs.segment_index));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_folds_are_order_and_type_sensitive() {
        let mut a = Digest::new();
        a.u64(1);
        a.u64(2);
        let mut b = Digest::new();
        b.u64(2);
        b.u64(1);
        assert_ne!(a.finish(), b.finish());

        let mut c = Digest::new();
        c.str("ab");
        let mut d = Digest::new();
        d.str("a");
        d.str("b");
        assert_ne!(c.finish(), d.finish(), "length prefixes disambiguate");

        assert_ne!(digest_bytes(b"x"), digest_bytes(b"x\0"));
    }

    #[test]
    fn float_digests_are_bit_exact() {
        let mut a = Digest::new();
        a.f64(0.0);
        let mut b = Digest::new();
        b.f64(-0.0);
        assert_ne!(a.finish(), b.finish(), "sign of zero is visible");
    }
}
