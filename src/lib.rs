//! # mobile-traffic-dists
//!
//! A production-quality Rust reproduction of **"Characterizing and
//! Modeling Session-Level Mobile Traffic Demands from Large-Scale
//! Measurements"** (Zanella, Bazco-Nogueras, Ziemlicki, Fiore — ACM IMC
//! 2023): session-level mobile traffic models — bimodal arrivals per
//! BS-load decile, log-normal-mixture volume PDFs, power-law
//! duration–volume coupling — plus the full measurement substrate the
//! paper's closed dataset required us to simulate.
//!
//! ## Crate map
//!
//! - [`math`] — from-scratch numerics: distributions, EMD, clustering,
//!   Savitzky–Golay, Levenberg–Marquardt, histograms.
//! - [`netsim`] — the synthetic operational 4G/5G network: topology,
//!   31-service ground-truth catalog, mobility/handover machinery, the
//!   RAN/gateway probe pipeline.
//! - [`dataset`] — the operator's privacy-preserving aggregation
//!   (per-minute counts, binned PDFs, duration–volume pairs) with the
//!   paper's Eq. (1)/(2) estimators.
//! - [`models`] — **the paper's contribution**: fitting and sampling of
//!   the released per-service models (`mtd-core`).
//! - [`analysis`] — the §4 characterization pipeline (ranking,
//!   similarity, clustering, invariance).
//! - [`usecases`] — §6 applications: network-slicing capacity allocation
//!   and vRAN CU–DU energy orchestration.
//!
//! ## Quickstart
//!
//! ```
//! use mobile_traffic_dists::prelude::*;
//!
//! // 1. Simulate a small measurement campaign and aggregate it.
//! let config = ScenarioConfig { n_bs: 6, days: 2, arrival_scale: 0.05,
//!     ..ScenarioConfig::small_test() };
//! let topology = Topology::generate(config.n_bs, config.seed);
//! let catalog = ServiceCatalog::paper();
//! let dataset = Dataset::build(&config, &topology, &catalog);
//!
//! // 2. Fit the paper's session-level models.
//! let registry = fit_registry(&dataset).expect("fit");
//! assert!(registry.by_name("Netflix").is_some());
//!
//! // 3. Generate synthetic session-level traffic from the models.
//! use rand::SeedableRng;
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
//! let generator = SessionGenerator::new(&registry).expect("generator");
//! let day = generator.generate_day(9, &mut rng);
//! assert!(!day.is_empty());
//! ```

pub mod chaos;
pub mod digest;

pub use mtd_analysis as analysis;
pub use mtd_core as models;
pub use mtd_dataset as dataset;
pub use mtd_fault as fault;
pub use mtd_math as math;
pub use mtd_netsim as netsim;
pub use mtd_usecases as usecases;

/// The most commonly used items in one import.
pub mod prelude {
    pub use mtd_core::pipeline::{fit_registry, fit_registry_with};
    pub use mtd_core::{GeneratedSession, ModelRegistry, ServiceModel, SessionGenerator};
    pub use mtd_dataset::{Dataset, SliceFilter};
    pub use mtd_netsim::geo::Topology;
    pub use mtd_netsim::services::{ServiceCatalog, ServiceClass};
    pub use mtd_netsim::ScenarioConfig;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_types_are_usable() {
        let config = ScenarioConfig::small_test();
        assert!(config.validate().is_ok());
        let catalog = ServiceCatalog::paper();
        assert_eq!(catalog.len(), 31);
    }
}
